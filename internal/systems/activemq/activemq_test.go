package activemq

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/dlog"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// rig builds the three-broker chain plus producer/consumer envs.
func rig(t *testing.T, mode tracker.Mode, opts ...tracker.Option) ([3]*Broker, *jre.Env, *jre.Env) {
	t.Helper()
	net := netsim.New()
	store := taintmap.NewStore()
	mk := func(name string) *jre.Env {
		a := tracker.New(name, mode)
		all := append([]tracker.Option{tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree()))}, opts...)
		a = tracker.New(name, mode, all...)
		return jre.NewEnv(net, a)
	}
	brokers, err := StartBrokerChain("t", [3]*jre.Env{mk("broker1"), mk("broker2"), mk("broker3")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, b := range brokers {
			b.Close()
		}
	})
	return brokers, mk("producer"), mk("consumer")
}

// TestSDTMessageTrace is the Table IV ActiveMQ SDT scenario: the long
// text message published at broker1 must reach the consumer on broker3
// with its taint, across three broker hops.
func TestSDTMessageTrace(t *testing.T) {
	brokers, prodEnv, consEnv := rig(t, tracker.ModeDista)

	consumer, err := ConnectConsumer(consEnv, brokers[2].Addr(), "news")
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	producer, err := ConnectProducer(prodEnv, brokers[0].Addr(), taint.String{Value: "admin"})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()

	longText := strings.Repeat("breaking news! ", 500)
	if _, err := producer.PublishText("news", longText); err != nil {
		t.Fatal(err)
	}
	msg, err := consumer.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Body.Value != longText {
		t.Fatal("message body corrupted in transit")
	}
	if !msg.Body.Label.Has("Message") {
		t.Fatal("message taint lost across the broker chain")
	}
	tags := consEnv.Agent.SinkTagValues(SinkConsume)
	if len(tags) != 1 || tags[0] != "Message" {
		t.Fatalf("consumer sink tags = %v, want exactly [Message]", tags)
	}
	// Provenance: the taint was minted on the producer node.
	for _, o := range consEnv.Agent.Observations() {
		for _, k := range o.Taint.Keys() {
			if k.LocalID != "producer:1" {
				t.Fatalf("taint origin = %q, want producer:1", k.LocalID)
			}
		}
	}
}

func TestTopicIsolation(t *testing.T) {
	brokers, prodEnv, consEnv := rig(t, tracker.ModeOff)
	consumer, err := ConnectConsumer(consEnv, brokers[2].Addr(), "sports")
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	producer, err := ConnectProducer(prodEnv, brokers[0].Addr(), taint.String{Value: "u"})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if _, err := producer.PublishText("news", "not for sports"); err != nil {
		t.Fatal(err)
	}
	if _, err := producer.PublishText("sports", "goal!"); err != nil {
		t.Fatal(err)
	}
	msg, err := consumer.Receive()
	if err != nil || msg.Body.Value != "goal!" {
		t.Fatalf("got %q, %v", msg.Body.Value, err)
	}
}

func TestLocalSubscriberSameBroker(t *testing.T) {
	brokers, prodEnv, consEnv := rig(t, tracker.ModeDista)
	consumer, err := ConnectConsumer(consEnv, brokers[0].Addr(), "local")
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	producer, err := ConnectProducer(prodEnv, brokers[0].Addr(), taint.String{Value: "u"})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if _, err := producer.PublishText("local", "hi"); err != nil {
		t.Fatal(err)
	}
	msg, err := consumer.Receive()
	if err != nil || msg.Body.Value != "hi" || !msg.Body.Label.Has("Message") {
		t.Fatalf("msg = %+v, %v", msg, err)
	}
}

// TestSIMCredentialLeak: the user name read from the producer's
// credentials file fires broker1's LOG.info sink.
func TestSIMCredentialLeak(t *testing.T) {
	spec := tracker.NewSpec([]string{SourceCredentials}, []string{dlog.SinkDesc})
	brokers, prodEnv, _ := rig(t, tracker.ModeDista, tracker.WithSpec(spec))

	dir := t.TempDir()
	credPath := filepath.Join(dir, "credentials")
	if err := os.WriteFile(credPath, []byte("svc-account"), 0o644); err != nil {
		t.Fatal(err)
	}
	user, err := LoadCredentials(prodEnv, credPath)
	if err != nil {
		t.Fatal(err)
	}
	producer, err := ConnectProducer(prodEnv, brokers[0].Addr(), user)
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	// Publish something so the CONNECT frame is surely processed before
	// we assert (frames are handled in order on the connection).
	if _, err := producer.PublishText("t", "x"); err != nil {
		t.Fatal(err)
	}

	deadlineTags := func() []string {
		return brokers[0].Env.Agent.SinkTagValues(dlog.SinkDesc)
	}
	waitUntil(t, func() bool { return len(deadlineTags()) > 0 })
	tags := deadlineTags()
	if len(tags) != 1 || tags[0] != "cred1" {
		t.Fatalf("broker LOG#info tags = %v, want [cred1]", tags)
	}
	leaked := false
	for _, e := range brokers[0].Log.Entries() {
		if e.Tainted && strings.Contains(e.Message, "svc-account") {
			leaked = true
		}
	}
	if !leaked {
		t.Fatal("broker log never printed the tainted user")
	}
}

func TestPhosphorDropsMessageTaint(t *testing.T) {
	brokers, prodEnv, consEnv := rig(t, tracker.ModePhosphor)
	consumer, err := ConnectConsumer(consEnv, brokers[2].Addr(), "news")
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	producer, err := ConnectProducer(prodEnv, brokers[0].Addr(), taint.String{Value: "u"})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if _, err := producer.PublishText("news", "secret"); err != nil {
		t.Fatal(err)
	}
	msg, err := consumer.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Body.Label.Has("Message") {
		t.Fatal("phosphor mode carried the taint across brokers")
	}
}

// waitUntil polls cond briefly; broker frame handling is asynchronous
// relative to the producer's send.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if cond() {
			return
		}
		// The publish after CONNECT usually makes this immediate.
		yield()
	}
	if !cond() {
		t.Fatal("condition never became true")
	}
}

// yield gives broker goroutines a chance to run.
func yield() { time.Sleep(time.Millisecond) }
