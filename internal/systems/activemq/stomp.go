package activemq

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/jre"
)

// STOMP frontend: the paper notes ActiveMQ also speaks STOMP (§V-B,
// "ActiveMQ and RocketMQ supports many kinds of protocols including
// standard TCP, UDP, NIO, as well as HTTP/HTTPS, WebSocket and STOMP").
// This file implements a minimal STOMP 1.0-style text protocol bridged
// onto the broker: CONNECT/SEND/SUBSCRIBE in, CONNECTED/MESSAGE out.
// Frames are `COMMAND\nheader:value\n...\n\nbody\x00`; body bytes keep
// their taints through the instrumented socket stack like any payload.

// stompFrame is one parsed frame.
type stompFrame struct {
	Command string
	Headers map[string]string
	Body    taint.Bytes
}

// encodeStompFrame renders a frame; headers are untainted metadata.
func encodeStompFrame(f *stompFrame) taint.Bytes {
	var sb strings.Builder
	sb.WriteString(f.Command)
	sb.WriteByte('\n')
	for k, v := range f.Headers {
		fmt.Fprintf(&sb, "%s:%s\n", k, v)
	}
	sb.WriteByte('\n')
	out := taint.WrapBytes([]byte(sb.String())).Append(f.Body)
	return out.Append(taint.WrapBytes([]byte{0}))
}

// errStompIncomplete reports that more bytes are needed.
var errStompIncomplete = errors.New("activemq: incomplete STOMP frame")

// parseStompFrame parses one frame from raw, returning it and the bytes
// consumed.
func parseStompFrame(raw taint.Bytes) (*stompFrame, int, error) {
	end := -1
	for i, b := range raw.Data {
		if b == 0 {
			end = i
			break
		}
	}
	if end < 0 {
		return nil, 0, errStompIncomplete
	}
	frame := raw.Slice(0, end)
	headEnd := strings.Index(string(frame.Data), "\n\n")
	if headEnd < 0 {
		return nil, 0, fmt.Errorf("activemq: STOMP frame without header terminator")
	}
	lines := strings.Split(string(frame.Data[:headEnd]), "\n")
	if len(lines) == 0 || lines[0] == "" {
		return nil, 0, fmt.Errorf("activemq: STOMP frame without command")
	}
	headers := make(map[string]string, len(lines)-1)
	for _, line := range lines[1:] {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return nil, 0, fmt.Errorf("activemq: bad STOMP header %q", line)
		}
		headers[k] = v
	}
	return &stompFrame{
		Command: lines[0],
		Headers: headers,
		Body:    frame.Slice(headEnd+2, frame.Len()).Clone(),
	}, end + 1, nil
}

// stompConn reads/writes frames over a socket.
type stompConn struct {
	sock *jre.Socket
	mu   sync.Mutex
	acc  taint.Bytes
}

func (c *stompConn) send(f *stompFrame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sock.OutputStream().Write(encodeStompFrame(f))
}

func (c *stompConn) recv() (*stompFrame, error) {
	chunk := taint.MakeBytes(4096)
	for {
		if c.acc.Len() > 0 {
			f, consumed, err := parseStompFrame(c.acc)
			if err == nil {
				c.acc = c.acc.Slice(consumed, c.acc.Len())
				return f, nil
			}
			if !errors.Is(err, errStompIncomplete) {
				return nil, err
			}
		}
		n, err := c.sock.InputStream().Read(&chunk)
		if n > 0 {
			c.acc = c.acc.Append(chunk.Slice(0, n).Clone())
			continue
		}
		if err != nil {
			return nil, err
		}
	}
}

// StompListener bridges STOMP clients onto a broker.
type StompListener struct {
	broker *Broker
	ss     *jre.ServerSocket
	done   chan struct{}
}

// StartStompListener binds a STOMP endpoint at addr feeding the broker.
func (b *Broker) StartStompListener(addr string) (*StompListener, error) {
	ss, err := jre.ListenSocket(b.Env, addr)
	if err != nil {
		return nil, err
	}
	l := &StompListener{broker: b, ss: ss, done: make(chan struct{})}
	go l.acceptLoop()
	return l, nil
}

func (l *StompListener) acceptLoop() {
	defer close(l.done)
	for {
		sock, err := l.ss.Accept()
		if err != nil {
			return
		}
		go l.serveConn(sock)
	}
}

func (l *StompListener) serveConn(sock *jre.Socket) {
	defer sock.Close()
	c := &stompConn{sock: sock}
	var seq int64
	for {
		f, err := c.recv()
		if err != nil {
			return
		}
		switch f.Command {
		case "CONNECT":
			l.broker.Log.Info("user %s connected to broker %s",
				taint.StringOf(f.Body), l.broker.Name)
			if err := c.send(&stompFrame{Command: "CONNECTED", Headers: map[string]string{"version": "1.0"}}); err != nil {
				return
			}
		case "SUBSCRIBE":
			topic := f.Headers["destination"]
			l.broker.mu.Lock()
			l.broker.stompSubs = append(l.broker.stompSubs, stompSub{topic: topic, c: c})
			l.broker.mu.Unlock()
			if err := c.send(&stompFrame{Command: "RECEIPT", Headers: map[string]string{"receipt-id": topic}}); err != nil {
				return
			}
		case "SEND":
			seq++
			msg := Message{
				ID:    taint.Int64{Value: seq},
				Topic: taint.String{Value: f.Headers["destination"]},
				Body:  taint.StringOf(f.Body),
			}
			l.broker.route(&msg, 8)
		default:
			if err := c.send(&stompFrame{Command: "ERROR", Headers: map[string]string{"message": "unknown command " + f.Command}}); err != nil {
				return
			}
		}
	}
}

// Close stops the listener.
func (l *StompListener) Close() error {
	err := l.ss.Close()
	<-l.done
	return err
}

// stompSub is a STOMP subscriber registration.
type stompSub struct {
	topic string
	c     *stompConn
}

// deliverStomp pushes a routed message to matching STOMP subscribers;
// called from Broker.route.
func (b *Broker) deliverStomp(msg *Message) {
	b.mu.Lock()
	subs := append([]stompSub(nil), b.stompSubs...)
	b.mu.Unlock()
	for _, s := range subs {
		if s.topic != msg.Topic.Value {
			continue
		}
		_ = s.c.send(&stompFrame{
			Command: "MESSAGE",
			Headers: map[string]string{"destination": msg.Topic.Value},
			Body:    msg.Body.Bytes(),
		})
	}
}

// StompClient is a minimal STOMP client.
type StompClient struct {
	env *jre.Env
	c   *stompConn
}

// DialStomp connects and performs the CONNECT handshake; the user body
// may carry a taint (the SIM credentials flow).
func DialStomp(env *jre.Env, addr string, user taint.String) (*StompClient, error) {
	sock, err := jre.DialSocket(env, addr)
	if err != nil {
		return nil, err
	}
	sc := &StompClient{env: env, c: &stompConn{sock: sock}}
	if err := sc.c.send(&stompFrame{Command: "CONNECT", Body: user.Bytes()}); err != nil {
		sock.Close()
		return nil, err
	}
	resp, err := sc.c.recv()
	if err != nil || resp.Command != "CONNECTED" {
		sock.Close()
		return nil, fmt.Errorf("activemq: STOMP handshake failed: %v %v", resp, err)
	}
	return sc, nil
}

// Subscribe registers for a destination and waits for the receipt.
func (sc *StompClient) Subscribe(topic string) error {
	if err := sc.c.send(&stompFrame{Command: "SUBSCRIBE", Headers: map[string]string{"destination": topic}}); err != nil {
		return err
	}
	resp, err := sc.c.recv()
	if err != nil {
		return err
	}
	if resp.Command != "RECEIPT" {
		return fmt.Errorf("activemq: subscribe got %s", resp.Command)
	}
	return nil
}

// Send publishes a tainted body to a destination; the body is the SDT
// source point when the caller taints it.
func (sc *StompClient) Send(topic string, body taint.String) error {
	return sc.c.send(&stompFrame{
		Command: "SEND",
		Headers: map[string]string{"destination": topic},
		Body:    body.Bytes(),
	})
}

// SendText taints the text at the producer source point and sends it.
func (sc *StompClient) SendText(topic, text string) error {
	return sc.Send(topic, taint.String{
		Value: text,
		Label: sc.env.Agent.Source(SourceText, "Message"),
	})
}

// Receive blocks for the next MESSAGE frame and runs the consumer sink.
func (sc *StompClient) Receive() (Message, error) {
	for {
		f, err := sc.c.recv()
		if err != nil {
			return Message{}, err
		}
		if f.Command != "MESSAGE" {
			continue
		}
		body := taint.StringOf(f.Body)
		sc.env.Agent.CheckSink(SinkConsume, body.Label)
		return Message{Topic: taint.String{Value: f.Headers["destination"]}, Body: body}, nil
	}
}

// Close disconnects the client.
func (sc *StompClient) Close() error { return sc.c.sock.Close() }
