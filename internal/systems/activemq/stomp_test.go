package activemq

import (
	"errors"
	"strings"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
)

func stompRig(t *testing.T, mode tracker.Mode) ([3]*Broker, *StompClient, *StompClient) {
	t.Helper()
	brokers, prodEnv, consEnv := rig(t, mode)
	sl, err := brokers[0].StartStompListener("amq-t-stomp1:61613")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sl.Close() })
	sl3, err := brokers[2].StartStompListener("amq-t-stomp3:61613")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sl3.Close() })

	producer, err := DialStomp(prodEnv, "amq-t-stomp1:61613", taint.String{Value: "stomp-user"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { producer.Close() })
	consumer, err := DialStomp(consEnv, "amq-t-stomp3:61613", taint.String{Value: "reader"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consumer.Close() })
	return brokers, producer, consumer
}

func TestStompFrameCodec(t *testing.T) {
	tr := taint.NewTree()
	body := taint.FromString("payload", tr.NewSource("b", "l"))
	f := &stompFrame{
		Command: "SEND",
		Headers: map[string]string{"destination": "news"},
		Body:    body,
	}
	raw := encodeStompFrame(f)
	got, consumed, err := parseStompFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != raw.Len() {
		t.Fatalf("consumed %d of %d", consumed, raw.Len())
	}
	if got.Command != "SEND" || got.Headers["destination"] != "news" {
		t.Fatalf("frame = %+v", got)
	}
	if string(got.Body.Data) != "payload" || !got.Body.Union().Has("b") {
		t.Fatal("body or taint lost in STOMP codec")
	}
}

func TestStompFrameIncomplete(t *testing.T) {
	raw := encodeStompFrame(&stompFrame{Command: "SEND", Body: taint.WrapBytes([]byte("x"))})
	if _, _, err := parseStompFrame(raw.Slice(0, raw.Len()-1)); !errors.Is(err, errStompIncomplete) {
		t.Fatalf("err = %v", err)
	}
}

func TestStompFrameMalformed(t *testing.T) {
	for _, bad := range []string{"\n\n\x00", "SEND\nnocolon\n\n\x00"} {
		if _, _, err := parseStompFrame(taint.WrapBytes([]byte(bad))); err == nil {
			t.Fatalf("want error for %q", bad)
		}
	}
}

// TestStompTaintAcrossBrokerChain: a STOMP producer at broker1 and a
// STOMP consumer at broker3, with the message hopping through the
// object-stream broker network in between — three protocols on one
// taint path.
func TestStompTaintAcrossBrokerChain(t *testing.T) {
	_, producer, consumer := stompRig(t, tracker.ModeDista)
	if err := consumer.Subscribe("news"); err != nil {
		t.Fatal(err)
	}
	text := strings.Repeat("stomp news ", 200)
	if err := producer.SendText("news", text); err != nil {
		t.Fatal(err)
	}
	msg, err := consumer.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Body.Value != text {
		t.Fatal("body corrupted")
	}
	if !msg.Body.Label.Has("Message") {
		t.Fatal("taint lost through STOMP + broker chain")
	}
	tags := consumer.env.Agent.SinkTagValues(SinkConsume)
	if len(tags) != 1 || tags[0] != "Message" {
		t.Fatalf("sink tags = %v", tags)
	}
}

func TestStompConnectLogsUser(t *testing.T) {
	brokers, _, _ := stompRig(t, tracker.ModeDista)
	found := false
	for _, e := range brokers[0].Log.Entries() {
		if strings.Contains(e.Message, "stomp-user") {
			found = true
		}
	}
	if !found {
		t.Fatal("broker never logged the STOMP user")
	}
}

func TestStompUnknownCommand(t *testing.T) {
	_, producer, _ := stompRig(t, tracker.ModeOff)
	if err := producer.c.send(&stompFrame{Command: "BOGUS"}); err != nil {
		t.Fatal(err)
	}
	resp, err := producer.c.recv()
	if err != nil || resp.Command != "ERROR" {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
}

func TestStompPhosphorDropsTaint(t *testing.T) {
	_, producer, consumer := stompRig(t, tracker.ModePhosphor)
	if err := consumer.Subscribe("news"); err != nil {
		t.Fatal(err)
	}
	if err := producer.SendText("news", "secret"); err != nil {
		t.Fatal(err)
	}
	msg, err := consumer.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Body.Label.Has("Message") {
		t.Fatal("phosphor mode carried the taint over STOMP")
	}
}

// TestWebSocketStompAcrossBrokers: STOMP frames inside WebSocket
// messages, producer on broker1, consumer on broker3 — the paper's
// WebSocket transport combination.
func TestWebSocketStompAcrossBrokers(t *testing.T) {
	brokers, prodEnv, consEnv := rig(t, tracker.ModeDista)
	wl1, err := brokers[0].StartWebSocketListener("amq-t-ws1:61614")
	if err != nil {
		t.Fatal(err)
	}
	defer wl1.Close()
	wl3, err := brokers[2].StartWebSocketListener("amq-t-ws3:61614")
	if err != nil {
		t.Fatal(err)
	}
	defer wl3.Close()

	consumer, err := DialWebSocket(consEnv, "amq-t-ws3:61614", taint.String{Value: "reader"})
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	if err := consumer.Subscribe("news"); err != nil {
		t.Fatal(err)
	}
	producer, err := DialWebSocket(prodEnv, "amq-t-ws1:61614", taint.String{Value: "writer"})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()

	text := strings.Repeat("ws news ", 300)
	if err := producer.SendText("news", text); err != nil {
		t.Fatal(err)
	}
	msg, err := consumer.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Body.Value != text || !msg.Body.Label.Has("Message") {
		t.Fatal("taint or body lost over STOMP-over-WebSocket")
	}
	tags := consEnv.Agent.SinkTagValues(SinkConsume)
	if len(tags) != 1 || tags[0] != "Message" {
		t.Fatalf("sink tags = %v", tags)
	}
}

// TestWebSocketMixedTransports: a raw-TCP STOMP producer feeding a
// WebSocket consumer through the broker chain — three transports, one
// taint path.
func TestWebSocketMixedTransports(t *testing.T) {
	brokers, prodEnv, consEnv := rig(t, tracker.ModeDista)
	sl, err := brokers[0].StartStompListener("amq-t-mstomp:61613")
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	wl, err := brokers[2].StartWebSocketListener("amq-t-mws:61614")
	if err != nil {
		t.Fatal(err)
	}
	defer wl.Close()

	consumer, err := DialWebSocket(consEnv, "amq-t-mws:61614", taint.String{Value: "r"})
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	if err := consumer.Subscribe("mixed"); err != nil {
		t.Fatal(err)
	}
	producer, err := DialStomp(prodEnv, "amq-t-mstomp:61613", taint.String{Value: "w"})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()

	if err := producer.SendText("mixed", "across transports"); err != nil {
		t.Fatal(err)
	}
	msg, err := consumer.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Body.Value != "across transports" || !msg.Body.Label.Has("Message") {
		t.Fatal("taint lost across mixed STOMP/WebSocket transports")
	}
}
