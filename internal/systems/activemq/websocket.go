package activemq

import (
	"errors"
	"fmt"

	"dista/internal/core/taint"
	"dista/internal/jre"
	"dista/internal/wsmini"
)

// STOMP-over-WebSocket: the third transport combination of §V-B
// (ActiveMQ speaks STOMP both over raw TCP and over WebSocket). Each
// WebSocket binary message carries one STOMP frame.

// WSListener bridges STOMP-over-WebSocket clients onto a broker.
type WSListener struct {
	broker *Broker
	srv    *wsmini.Server
}

// StartWebSocketListener binds a ws+stomp endpoint at addr.
func (b *Broker) StartWebSocketListener(addr string) (*WSListener, error) {
	l := &WSListener{broker: b}
	srv, err := wsmini.Serve(b.Env, addr, l.serveConn)
	if err != nil {
		return nil, err
	}
	l.srv = srv
	return l, nil
}

func (l *WSListener) serveConn(path string, conn *wsmini.Conn) {
	defer conn.Close()
	if path != "/stomp" {
		return
	}
	var seq int64
	for {
		raw, err := conn.ReadMessage()
		if err != nil {
			return
		}
		f, _, err := parseStompFrame(raw)
		if err != nil {
			return
		}
		switch f.Command {
		case "CONNECT":
			l.broker.Log.Info("user %s connected to broker %s",
				taint.StringOf(f.Body), l.broker.Name)
			if err := wsSend(conn, &stompFrame{Command: "CONNECTED"}); err != nil {
				return
			}
		case "SUBSCRIBE":
			topic := f.Headers["destination"]
			l.broker.mu.Lock()
			l.broker.wsSubs = append(l.broker.wsSubs, wsSub{topic: topic, conn: conn})
			l.broker.mu.Unlock()
			if err := wsSend(conn, &stompFrame{Command: "RECEIPT"}); err != nil {
				return
			}
		case "SEND":
			seq++
			msg := Message{
				ID:    taint.Int64{Value: seq},
				Topic: taint.String{Value: f.Headers["destination"]},
				Body:  taint.StringOf(f.Body),
			}
			l.broker.route(&msg, 8)
		}
	}
}

// Close stops the listener.
func (l *WSListener) Close() error { return l.srv.Close() }

// wsSub is a WebSocket subscriber registration.
type wsSub struct {
	topic string
	conn  *wsmini.Conn
}

// wsSend ships one STOMP frame as one WebSocket message.
func wsSend(conn *wsmini.Conn, f *stompFrame) error {
	return conn.WriteMessage(encodeStompFrame(f))
}

// deliverWS pushes a routed message to WebSocket subscribers.
func (b *Broker) deliverWS(msg *Message) {
	b.mu.Lock()
	subs := append([]wsSub(nil), b.wsSubs...)
	b.mu.Unlock()
	for _, s := range subs {
		if s.topic != msg.Topic.Value {
			continue
		}
		_ = wsSend(s.conn, &stompFrame{
			Command: "MESSAGE",
			Headers: map[string]string{"destination": msg.Topic.Value},
			Body:    msg.Body.Bytes(),
		})
	}
}

// WSClient is a STOMP-over-WebSocket client.
type WSClient struct {
	env  *jre.Env
	conn *wsmini.Conn
}

// DialWebSocket connects, upgrades, and performs the STOMP CONNECT.
func DialWebSocket(env *jre.Env, addr string, user taint.String) (*WSClient, error) {
	conn, err := wsmini.Dial(env, addr, "/stomp")
	if err != nil {
		return nil, err
	}
	c := &WSClient{env: env, conn: conn}
	if err := wsSend(conn, &stompFrame{Command: "CONNECT", Body: user.Bytes()}); err != nil {
		conn.Close()
		return nil, err
	}
	resp, err := c.recv()
	if err != nil || resp.Command != "CONNECTED" {
		conn.Close()
		return nil, fmt.Errorf("activemq: ws handshake failed: %v %v", resp, err)
	}
	return c, nil
}

func (c *WSClient) recv() (*stompFrame, error) {
	raw, err := c.conn.ReadMessage()
	if err != nil {
		return nil, err
	}
	f, _, err := parseStompFrame(raw)
	return f, err
}

// Subscribe registers for a destination.
func (c *WSClient) Subscribe(topic string) error {
	if err := wsSend(c.conn, &stompFrame{Command: "SUBSCRIBE", Headers: map[string]string{"destination": topic}}); err != nil {
		return err
	}
	resp, err := c.recv()
	if err != nil {
		return err
	}
	if resp.Command != "RECEIPT" {
		return errors.New("activemq: ws subscribe not acknowledged")
	}
	return nil
}

// SendText taints and publishes a text message.
func (c *WSClient) SendText(topic, text string) error {
	body := taint.String{Value: text, Label: c.env.Agent.Source(SourceText, "Message")}
	return wsSend(c.conn, &stompFrame{
		Command: "SEND",
		Headers: map[string]string{"destination": topic},
		Body:    body.Bytes(),
	})
}

// Receive blocks for the next MESSAGE and runs the consumer sink.
func (c *WSClient) Receive() (Message, error) {
	for {
		f, err := c.recv()
		if err != nil {
			return Message{}, err
		}
		if f.Command != "MESSAGE" {
			continue
		}
		body := taint.StringOf(f.Body)
		c.env.Agent.CheckSink(SinkConsume, body.Label)
		return Message{Topic: taint.String{Value: f.Headers["destination"]}, Body: body}, nil
	}
}

// Close disconnects the client.
func (c *WSClient) Close() error { return c.conn.Close() }
