// Package hbase is the mini-HBase of the evaluation (DSN'22 Table III
// row 5): an HMaster and two RegionServers coordinating through the
// mini-ZooKeeper znode service, with clients reading table rows over
// the NIO RPC substrate. Because every lookup crosses HBase *and*
// ZooKeeper, the workload is the paper's cross-system taint-tracking
// scenario.
//
// SDT scenario (Table IV): the client's TableName variable is the
// source; the Result variable containing the data rows is the sink.
//
// SIM scenario: each RegionServer reads its configuration file
// (source); the server name from that file travels RS -> ZooKeeper ->
// HMaster, where it is logged (LOG.info sink) — taint tracked across
// two systems.
package hbase

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"dista/internal/core/taint"
	"dista/internal/dlog"
	"dista/internal/jre"
	"dista/internal/rpc"
	"dista/internal/systems/zk"
)

// Taint point descriptors of the HBase scenarios.
const (
	// SourceTableName is the SDT source: the client's TableName.
	SourceTableName = "Client#TableName"
	// SinkResult is the SDT sink: the client's Result rows.
	SinkResult = "Client#Result"
	// SourceRSConf is the SIM source: a RegionServer's config file.
	SourceRSConf = "RegionServerConfig#load"
)

// GetReq asks a RegionServer for one row.
type GetReq struct {
	Table taint.String
	Row   taint.String
}

// WriteTo implements jre.Serializable.
func (m *GetReq) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteString32(m.Table); err != nil {
		return err
	}
	return w.WriteString32(m.Row)
}

// ReadFrom implements jre.Serializable.
func (m *GetReq) ReadFrom(r *jre.DataInputStream) error {
	var err error
	if m.Table, err = r.ReadString32(); err != nil {
		return err
	}
	m.Row, err = r.ReadString32()
	return err
}

// Cell is one column of a row.
type Cell struct {
	Col taint.String
	Val taint.String
}

// Result is a row's data (the paper's Result variable).
type Result struct {
	Table taint.String
	Row   taint.String
	Cells []Cell
}

// WriteTo implements jre.Serializable.
func (m *Result) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteString32(m.Table); err != nil {
		return err
	}
	if err := w.WriteString32(m.Row); err != nil {
		return err
	}
	if err := w.WriteInt32(taint.Int32{Value: int32(len(m.Cells))}); err != nil {
		return err
	}
	for _, c := range m.Cells {
		if err := w.WriteString32(c.Col); err != nil {
			return err
		}
		if err := w.WriteString32(c.Val); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrom implements jre.Serializable.
func (m *Result) ReadFrom(r *jre.DataInputStream) error {
	var err error
	if m.Table, err = r.ReadString32(); err != nil {
		return err
	}
	if m.Row, err = r.ReadString32(); err != nil {
		return err
	}
	n, err := r.ReadInt32()
	if err != nil {
		return err
	}
	m.Cells = make([]Cell, n.Value)
	for i := range m.Cells {
		if m.Cells[i].Col, err = r.ReadString32(); err != nil {
			return err
		}
		if m.Cells[i].Val, err = r.ReadString32(); err != nil {
			return err
		}
	}
	return nil
}

// PutReq stores one cell.
type PutReq struct {
	Table taint.String
	Row   taint.String
	Col   taint.String
	Val   taint.String
}

// WriteTo implements jre.Serializable.
func (m *PutReq) WriteTo(w *jre.DataOutputStream) error {
	for _, s := range []taint.String{m.Table, m.Row, m.Col, m.Val} {
		if err := w.WriteString32(s); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrom implements jre.Serializable.
func (m *PutReq) ReadFrom(r *jre.DataInputStream) error {
	var err error
	for _, p := range []*taint.String{&m.Table, &m.Row, &m.Col, &m.Val} {
		if *p, err = r.ReadString32(); err != nil {
			return err
		}
	}
	return nil
}

// Ack acknowledges a Put.
type Ack struct{ OK bool }

// WriteTo implements jre.Serializable.
func (m *Ack) WriteTo(w *jre.DataOutputStream) error { return w.WriteBool(m.OK, taint.Taint{}) }

// ReadFrom implements jre.Serializable.
func (m *Ack) ReadFrom(r *jre.DataInputStream) error {
	ok, _, err := r.ReadBool()
	m.OK = ok
	return err
}

// RegionServer serves a share of the tables from its memstore.
type RegionServer struct {
	Env  *jre.Env
	Name taint.String
	addr string

	server *rpc.Server
	mu     sync.Mutex
	store  map[string]map[string][]Cell // table -> row -> cells
}

// StartRegionServer launches a region server: it reads its config (the
// SIM source), registers itself in ZooKeeper under /hbase/rs/<name>,
// and serves get/put RPCs at addr.
func StartRegionServer(env *jre.Env, addr, zkAddr, confPath string) (*RegionServer, error) {
	rs := &RegionServer{
		Env:   env,
		Name:  taint.String{Value: env.Agent.Node()},
		addr:  addr,
		store: make(map[string]map[string][]Cell),
	}
	if confPath != "" {
		raw, err := jre.ReadFileTainted(env, confPath, SourceRSConf, "rsConf")
		if err != nil {
			return nil, err
		}
		rs.Name = taint.StringOf(raw)
	}
	srv, err := rpc.Serve(env, addr)
	if err != nil {
		return nil, err
	}
	rs.server = srv
	rpc.HandleObject(srv, "get", func() *GetReq { return &GetReq{} }, rs.handleGet)
	rpc.HandleObject(srv, "put", func() *PutReq { return &PutReq{} }, rs.handlePut)

	// Register in ZooKeeper: the znode path is routing metadata, the
	// payload is "<tainted name>\n<rpc addr>".
	zc, err := zk.DialClient(env, zkAddr)
	if err != nil {
		srv.Close()
		return nil, err
	}
	defer zc.Close()
	payload := rs.Name.Bytes().Append(taint.WrapBytes([]byte("\n" + addr)))
	if err := zc.Create(taint.String{Value: "/hbase/rs/" + env.Agent.Node()}, payload); err != nil {
		srv.Close()
		return nil, fmt.Errorf("hbase: register region server: %w", err)
	}
	return rs, nil
}

// handleGet answers a row lookup; the Result echoes the (possibly
// tainted) table name and carries the stored cells.
func (rs *RegionServer) handleGet(req *GetReq) (*Result, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rows, ok := rs.store[req.Table.Value]
	if !ok {
		return nil, fmt.Errorf("hbase: region server %s does not serve table %q", rs.Env.Agent.Node(), req.Table.Value)
	}
	cells := rows[req.Row.Value]
	out := make([]Cell, len(cells))
	copy(out, cells)
	return &Result{Table: req.Table, Row: req.Row, Cells: out}, nil
}

// handlePut stores a cell.
func (rs *RegionServer) handlePut(req *PutReq) (*Ack, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rows, ok := rs.store[req.Table.Value]
	if !ok {
		return nil, fmt.Errorf("hbase: region server %s does not serve table %q", rs.Env.Agent.Node(), req.Table.Value)
	}
	rows[req.Row.Value] = append(rows[req.Row.Value], Cell{Col: req.Col, Val: req.Val})
	return &Ack{OK: true}, nil
}

// assignTable makes this server authoritative for a table.
func (rs *RegionServer) assignTable(table string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.store[table] == nil {
		rs.store[table] = make(map[string][]Cell)
	}
}

// Close stops the server.
func (rs *RegionServer) Close() error { return rs.server.Close() }

// Master is the HMaster: it discovers region servers in ZooKeeper,
// assigns tables round-robin, and publishes the meta table to
// /hbase/meta.
type Master struct {
	Env *jre.Env
	Log *dlog.Logger
}

// NewMaster builds a master on env.
func NewMaster(env *jre.Env) *Master {
	return &Master{Env: env, Log: dlog.New(env.Agent)}
}

// AssignRegions waits for the expected number of region servers to
// appear in ZooKeeper, logs each registration (the SIM sink point),
// assigns the tables round-robin, and writes the meta znode.
func (m *Master) AssignRegions(zkAddr string, rss []*RegionServer, tables []string) error {
	zc, err := zk.DialClient(m.Env, zkAddr)
	if err != nil {
		return err
	}
	defer zc.Close()

	var names []string
	deadline := time.Now().Add(10 * time.Second)
	for {
		names, err = zc.Children("/hbase/rs")
		if err == nil && len(names) >= len(rss) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("hbase: only %d of %d region servers registered", len(names), len(rss))
		}
		time.Sleep(time.Millisecond)
	}

	addrs := make(map[string]string, len(names))
	for _, node := range names {
		payload, err := zc.Get(taint.String{Value: "/hbase/rs/" + node})
		if err != nil {
			return err
		}
		idx := strings.IndexByte(string(payload.Data), '\n')
		if idx < 0 {
			return fmt.Errorf("hbase: malformed registration for %s", node)
		}
		name := taint.StringOf(payload.Slice(0, idx))
		addrs[node] = string(payload.Data[idx+1:])
		// The SIM sink: the master logs the server name whose taint
		// travelled RS -> ZooKeeper -> master.
		m.Log.Info("registered region server %s at %s", name, addrs[node])
	}

	var meta strings.Builder
	for i, table := range tables {
		rs := rss[i%len(rss)]
		rs.assignTable(table)
		fmt.Fprintf(&meta, "%s=%s\n", table, rs.addr)
	}
	return zc.Set(taint.String{Value: "/hbase/meta"}, taint.WrapBytes([]byte(meta.String())))
}

// Client reads rows, resolving regions through ZooKeeper.
type Client struct {
	env  *jre.Env
	zc   *zk.Client
	meta map[string]string
}

// NewClient connects to ZooKeeper and caches the meta table.
func NewClient(env *jre.Env, zkAddr string) (*Client, error) {
	zc, err := zk.DialClient(env, zkAddr)
	if err != nil {
		return nil, err
	}
	c := &Client{env: env, zc: zc}
	if err := c.refreshMeta(); err != nil {
		zc.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) refreshMeta() error {
	raw, err := c.zc.Get(taint.String{Value: "/hbase/meta"})
	if err != nil {
		return fmt.Errorf("hbase: read meta: %w", err)
	}
	meta := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(raw.Data)), "\n") {
		if line == "" {
			continue
		}
		table, addr, ok := strings.Cut(line, "=")
		if !ok {
			return fmt.Errorf("hbase: malformed meta line %q", line)
		}
		meta[table] = addr
	}
	c.meta = meta
	return nil
}

// TableName mints the client's tainted TableName variable (the SDT
// source point).
func (c *Client) TableName(name string) taint.String {
	return taint.String{Value: name, Label: c.env.Agent.Source(SourceTableName, "TableName")}
}

// regionFor resolves a table to its region server address.
func (c *Client) regionFor(table string) (string, error) {
	addr, ok := c.meta[table]
	if !ok {
		return "", fmt.Errorf("hbase: no region for table %q", table)
	}
	return addr, nil
}

// Get fetches a row and runs the SDT sink over the Result.
func (c *Client) Get(table taint.String, row string) (*Result, error) {
	addr, err := c.regionFor(table.Value)
	if err != nil {
		return nil, err
	}
	var result Result
	req := &GetReq{Table: table, Row: taint.String{Value: row}}
	if err := rpc.CallOnce(c.env, addr, "get", req, &result); err != nil {
		return nil, err
	}
	labels := []taint.Taint{result.Table.Label}
	for _, cell := range result.Cells {
		labels = append(labels, cell.Col.Label, cell.Val.Label)
	}
	c.env.Agent.CheckSink(SinkResult, taint.CombineAll(labels...))
	return &result, nil
}

// Put stores one cell.
func (c *Client) Put(table taint.String, row, col, val string) error {
	addr, err := c.regionFor(table.Value)
	if err != nil {
		return err
	}
	var ack Ack
	req := &PutReq{
		Table: table,
		Row:   taint.String{Value: row},
		Col:   taint.String{Value: col},
		Val:   taint.String{Value: val},
	}
	if err := rpc.CallOnce(c.env, addr, "put", req, &ack); err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("hbase: put rejected")
	}
	return nil
}

// PutTainted stores one cell whose tainted value the caller supplies.
func (c *Client) PutTainted(table taint.String, row, col string, val taint.String) error {
	addr, err := c.regionFor(table.Value)
	if err != nil {
		return err
	}
	var ack Ack
	req := &PutReq{
		Table: table,
		Row:   taint.String{Value: row},
		Col:   taint.String{Value: col},
		Val:   val,
	}
	if err := rpc.CallOnce(c.env, addr, "put", req, &ack); err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("hbase: put rejected")
	}
	return nil
}

// Close releases the ZooKeeper connection.
func (c *Client) Close() error { return c.zc.Close() }

// Cluster bundles a full deployment: ZooKeeper, master and region
// servers.
type Cluster struct {
	ZK     *zk.Server
	ZKAddr string
	Master *Master
	RSs    []*RegionServer
}

// StartCluster boots ZooKeeper, the region servers (with optional
// per-server config files) and the master, and assigns tables.
func StartCluster(id string, zkEnv *jre.Env, masterEnv *jre.Env, rsEnvs []*jre.Env, rsConfs []string, tables []string) (*Cluster, error) {
	zkAddr := "hbase-" + id + "-zk:2181"
	zkSrv, err := zk.StartServer(zkEnv, zkAddr)
	if err != nil {
		return nil, err
	}
	c := &Cluster{ZK: zkSrv, ZKAddr: zkAddr, Master: NewMaster(masterEnv)}

	boot, err := zk.DialClient(masterEnv, zkAddr)
	if err != nil {
		zkSrv.Close()
		return nil, err
	}
	_ = boot.Create(taint.String{Value: "/hbase"}, taint.Bytes{})
	_ = boot.Create(taint.String{Value: "/hbase/rs"}, taint.Bytes{})
	_ = boot.Create(taint.String{Value: "/hbase/meta"}, taint.Bytes{})
	boot.Close()

	for i, env := range rsEnvs {
		conf := ""
		if i < len(rsConfs) {
			conf = rsConfs[i]
		}
		addr := fmt.Sprintf("hbase-%s-rs%d:16020", id, i+1)
		rs, err := StartRegionServer(env, addr, zkAddr, conf)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.RSs = append(c.RSs, rs)
	}
	if err := c.Master.AssignRegions(zkAddr, c.RSs, tables); err != nil {
		c.Stop()
		return nil, err
	}
	return c, nil
}

// Stop shuts the whole cluster down.
func (c *Cluster) Stop() {
	for _, rs := range c.RSs {
		rs.Close()
	}
	c.ZK.Close()
}
