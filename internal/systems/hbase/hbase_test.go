package hbase

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/dlog"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/systems/zk"
	"dista/internal/taintmap"
)

// rig boots a full cluster: 1 zk, 1 master, 2 region servers, 1 client.
func rig(t *testing.T, mode tracker.Mode, withConfs bool, opts ...tracker.Option) (*Cluster, *Client) {
	t.Helper()
	net := netsim.New()
	store := taintmap.NewStore()
	mk := func(name string) *jre.Env {
		a := tracker.New(name, mode)
		all := append([]tracker.Option{tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree()))}, opts...)
		a = tracker.New(name, mode, all...)
		return jre.NewEnv(net, a)
	}
	var confs []string
	if withConfs {
		dir := t.TempDir()
		for i := 1; i <= 2; i++ {
			path := filepath.Join(dir, "rs.conf")
			path = path + string(rune('0'+i))
			if err := os.WriteFile(path, []byte("rs-host-"+string(rune('0'+i))), 0o644); err != nil {
				t.Fatal(err)
			}
			confs = append(confs, path)
		}
	}
	cluster, err := StartCluster("t",
		mk("zknode"), mk("hmaster"),
		[]*jre.Env{mk("rs1"), mk("rs2")}, confs,
		[]string{"users", "events"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	client, err := NewClient(mk("client"), cluster.ZKAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cluster, client
}

func TestGetPutAcrossRegionServers(t *testing.T) {
	_, client := rig(t, tracker.ModeOff, false)
	// "users" lands on rs1, "events" on rs2 (round-robin assignment).
	for _, table := range []string{"users", "events"} {
		tn := client.TableName(table)
		if err := client.Put(tn, "row1", "name", "alice"); err != nil {
			t.Fatal(err)
		}
		res, err := client.Get(tn, "row1")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cells) != 1 || res.Cells[0].Val.Value != "alice" {
			t.Fatalf("table %s result = %+v", table, res)
		}
	}
}

// TestSDTTableNameTrace is the Table IV HBase SDT scenario: the tainted
// TableName surfaces in the Result at the client sink after crossing to
// the region server and back.
func TestSDTTableNameTrace(t *testing.T) {
	_, client := rig(t, tracker.ModeDista, false)
	tn := client.TableName("users")
	if tn.Label.Empty() {
		t.Fatal("TableName must be tainted at the source")
	}
	if err := client.Put(tn, "row1", "name", "alice"); err != nil {
		t.Fatal(err)
	}
	res, err := client.Get(tn, "row1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Table.Label.Has("TableName") {
		t.Fatal("Result lost the TableName taint")
	}
	tags := client.env.Agent.SinkTagValues(SinkResult)
	if !contains(tags, "TableName") {
		t.Fatalf("sink tags = %v, want TableName", tags)
	}
}

// TestSIMCrossSystemLeak: the region-server name read from its config
// file travels RS -> ZooKeeper -> HMaster log: taint tracked across two
// systems (the paper's HBase+ZooKeeper cross-system scenario).
func TestSIMCrossSystemLeak(t *testing.T) {
	spec := tracker.NewSpec([]string{SourceRSConf}, []string{dlog.SinkDesc})
	cluster, _ := rig(t, tracker.ModeDista, true, tracker.WithSpec(spec))

	tags := cluster.Master.Env.Agent.SinkTagValues(dlog.SinkDesc)
	if len(tags) != 2 || tags[0] != "rsConf1" || tags[1] != "rsConf1" {
		// Each RS generates its own rsConf1 (sequence restarts per node).
		if !contains(tags, "rsConf1") {
			t.Fatalf("master LOG#info tags = %v, want rsConf1 entries", tags)
		}
	}
	// Both region servers' taints must arrive, each from its own node.
	origins := make(map[string]bool)
	for _, o := range cluster.Master.Env.Agent.Observations() {
		for _, k := range o.Taint.Keys() {
			origins[k.LocalID] = true
		}
	}
	if !origins["rs1:1"] || !origins["rs2:1"] {
		t.Fatalf("taint origins = %v, want both region servers", origins)
	}
	// The master log actually printed the leaked names.
	leaks := 0
	for _, e := range cluster.Master.Log.Entries() {
		if e.Tainted && strings.Contains(e.Message, "rs-host-") {
			leaks++
		}
	}
	if leaks != 2 {
		t.Fatalf("master printed %d tainted names, want 2", leaks)
	}
}

func TestPhosphorDropsTableNameAcrossNodes(t *testing.T) {
	cluster, client := rig(t, tracker.ModePhosphor, false)
	tn := client.TableName("users")
	if err := client.Put(tn, "r", "c", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get(tn, "r"); err != nil {
		t.Fatal(err)
	}
	// No taint minted on the client may appear on any other node.
	for _, env := range []*jre.Env{cluster.Master.Env, cluster.RSs[0].Env, cluster.RSs[1].Env} {
		for _, o := range env.Agent.Observations() {
			for _, k := range o.Taint.Keys() {
				if k.LocalID == "client:1" {
					t.Fatalf("phosphor transported client taint to %s", env.Agent.Node())
				}
			}
		}
	}
}

func TestGetUnknownTable(t *testing.T) {
	_, client := rig(t, tracker.ModeOff, false)
	if _, err := client.Get(client.TableName("missing"), "r"); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestGetMissingRowReturnsEmptyResult(t *testing.T) {
	_, client := rig(t, tracker.ModeOff, false)
	res, err := client.Get(client.TableName("users"), "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 0 {
		t.Fatalf("cells = %v", res.Cells)
	}
}

func TestMetaDistribution(t *testing.T) {
	cluster, client := rig(t, tracker.ModeOff, false)
	if len(client.meta) != 2 {
		t.Fatalf("meta = %v", client.meta)
	}
	if client.meta["users"] == client.meta["events"] {
		t.Fatal("tables must round-robin across the two region servers")
	}
	if cluster.ZK.NodeCount() < 4 {
		t.Fatalf("znodes = %d", cluster.ZK.NodeCount())
	}
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

func TestStartRegionServerBadConf(t *testing.T) {
	net := netsim.New()
	mk := func(name string) *jre.Env {
		return jre.NewEnv(net, tracker.New(name, tracker.ModeOff))
	}
	zkSrv, err := zkStart(mk("zknode"))
	if err != nil {
		t.Fatal(err)
	}
	defer zkSrv.Close()
	_, err = StartRegionServer(mk("rs"), "rs-bad:1", "hbase-badconf-zk:2181",
		filepath.Join(t.TempDir(), "missing.conf"))
	if err == nil {
		t.Fatal("missing conf must fail region server start")
	}
}

// zkStart boots a zk server at the fixed test address.
func zkStart(env *jre.Env) (*zk.Server, error) {
	return zk.StartServer(env, "hbase-badconf-zk:2181")
}

func TestDuplicateRegionServerRegistration(t *testing.T) {
	net := netsim.New()
	mk := func(name string) *jre.Env {
		return jre.NewEnv(net, tracker.New(name, tracker.ModeOff))
	}
	zkSrv, err := zk.StartServer(mk("zknode"), "hbase-dup-zk:2181")
	if err != nil {
		t.Fatal(err)
	}
	defer zkSrv.Close()
	boot, err := zk.DialClient(mk("boot"), "hbase-dup-zk:2181")
	if err != nil {
		t.Fatal(err)
	}
	boot.Create(taint.String{Value: "/hbase"}, taint.Bytes{})
	boot.Create(taint.String{Value: "/hbase/rs"}, taint.Bytes{})
	boot.Close()

	env := mk("rs1")
	rs, err := StartRegionServer(env, "rs-dup-a:1", "hbase-dup-zk:2181", "")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	// A second server with the same node name collides on the znode.
	if _, err := StartRegionServer(env, "rs-dup-b:1", "hbase-dup-zk:2181", ""); err == nil {
		t.Fatal("duplicate registration must fail")
	}
}

func TestResultSerializationRoundTrip(t *testing.T) {
	tr := taint.NewTree()
	src := &Result{
		Table: taint.String{Value: "users", Label: tr.NewSource("tn", "l")},
		Row:   taint.String{Value: "r1"},
		Cells: []Cell{
			{Col: taint.String{Value: "name"}, Val: taint.String{Value: "alice", Label: tr.NewSource("v", "l")}},
		},
	}
	b, err := jre.MarshalObject(src)
	if err != nil {
		t.Fatal(err)
	}
	var dst Result
	if err := jre.UnmarshalObject(b, &dst); err != nil {
		t.Fatal(err)
	}
	if dst.Table.Value != "users" || !dst.Table.Label.Has("tn") {
		t.Fatalf("table = %+v", dst.Table)
	}
	if len(dst.Cells) != 1 || dst.Cells[0].Val.Value != "alice" || !dst.Cells[0].Val.Label.Has("v") {
		t.Fatalf("cells = %+v", dst.Cells)
	}
}
