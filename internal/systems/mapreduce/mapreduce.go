// Package mapreduce is the mini-MapReduce/Yarn of the evaluation
// (DSN'22 Table III row 2): a ResourceManager, a NodeManager and a task
// container computing Pi by Monte-Carlo sampling, communicating over
// the NIO RPC substrate (the paper's "JRE NIO + Yarn RPC" transports).
//
// SDT scenario (Table IV): the job's ApplicationID generated on the
// client is the source; the client's getApplicationReport is the sink.
// The id travels client -> RM -> NM -> container -> NM -> RM -> client.
//
// SIM scenario: the client reads its job configuration file (source);
// the ResourceManager logs the submitted queue name (LOG.info sink).
package mapreduce

import (
	"fmt"
	"math/rand"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/dlog"
	"dista/internal/jre"
	"dista/internal/rpc"
)

// Taint point descriptors of the MapReduce scenarios.
const (
	// SourceAppID is the SDT source: the ApplicationID generated on the
	// client.
	SourceAppID = "JobClient#ApplicationID"
	// SinkReport is the SDT sink: the client's getApplicationReport.
	SinkReport = "JobClient#getApplicationReport"
	// SourceJobConf is the SIM source: reading the job configuration.
	SourceJobConf = "JobConf#load"
)

// Application states reported by the ResourceManager.
const (
	StateRunning  = "RUNNING"
	StateFinished = "FINISHED"
)

// SubmitJob is the client -> RM submission.
type SubmitJob struct {
	AppID   taint.String
	Queue   taint.String
	Samples taint.Int64
}

// WriteTo implements jre.Serializable.
func (m *SubmitJob) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteString32(m.AppID); err != nil {
		return err
	}
	if err := w.WriteString32(m.Queue); err != nil {
		return err
	}
	return w.WriteInt64(m.Samples)
}

// ReadFrom implements jre.Serializable.
func (m *SubmitJob) ReadFrom(r *jre.DataInputStream) error {
	var err error
	if m.AppID, err = r.ReadString32(); err != nil {
		return err
	}
	if m.Queue, err = r.ReadString32(); err != nil {
		return err
	}
	m.Samples, err = r.ReadInt64()
	return err
}

// Ack is a generic acknowledgement.
type Ack struct {
	OK bool
}

// WriteTo implements jre.Serializable.
func (m *Ack) WriteTo(w *jre.DataOutputStream) error { return w.WriteBool(m.OK, taint.Taint{}) }

// ReadFrom implements jre.Serializable.
func (m *Ack) ReadFrom(r *jre.DataInputStream) error {
	ok, _, err := r.ReadBool()
	m.OK = ok
	return err
}

// TaskSpec is the RM -> NM -> container task description.
type TaskSpec struct {
	AppID   taint.String
	Samples taint.Int64
}

// WriteTo implements jre.Serializable.
func (m *TaskSpec) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteString32(m.AppID); err != nil {
		return err
	}
	return w.WriteInt64(m.Samples)
}

// ReadFrom implements jre.Serializable.
func (m *TaskSpec) ReadFrom(r *jre.DataInputStream) error {
	var err error
	if m.AppID, err = r.ReadString32(); err != nil {
		return err
	}
	m.Samples, err = r.ReadInt64()
	return err
}

// TaskResult is the container's answer.
type TaskResult struct {
	AppID  taint.String
	Pi     float64
	PiTag  taint.Taint
	Inside taint.Int64
}

// WriteTo implements jre.Serializable.
func (m *TaskResult) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteString32(m.AppID); err != nil {
		return err
	}
	if err := w.WriteFloat64(m.Pi, m.PiTag); err != nil {
		return err
	}
	return w.WriteInt64(m.Inside)
}

// ReadFrom implements jre.Serializable.
func (m *TaskResult) ReadFrom(r *jre.DataInputStream) error {
	var err error
	if m.AppID, err = r.ReadString32(); err != nil {
		return err
	}
	if m.Pi, m.PiTag, err = r.ReadFloat64(); err != nil {
		return err
	}
	m.Inside, err = r.ReadInt64()
	return err
}

// Report is the RM's application report.
type Report struct {
	AppID taint.String
	State taint.String
	Pi    float64
	PiTag taint.Taint
}

// WriteTo implements jre.Serializable.
func (m *Report) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteString32(m.AppID); err != nil {
		return err
	}
	if err := w.WriteString32(m.State); err != nil {
		return err
	}
	return w.WriteFloat64(m.Pi, m.PiTag)
}

// ReadFrom implements jre.Serializable.
func (m *Report) ReadFrom(r *jre.DataInputStream) error {
	var err error
	if m.AppID, err = r.ReadString32(); err != nil {
		return err
	}
	if m.State, err = r.ReadString32(); err != nil {
		return err
	}
	m.Pi, m.PiTag, err = r.ReadFloat64()
	return err
}

// Cluster is a running mini-Yarn: RM, NM and a container host.
type Cluster struct {
	rmEnv, nmEnv, ctEnv    *jre.Env
	rmAddr, nmAddr, ctAddr string
	RMLog                  *dlog.Logger

	rm, nm, ct *rpc.Server

	mu   sync.Mutex
	apps map[string]*Report
}

// Start launches the three daemons on the given envs. id isolates
// concurrent clusters on one network.
func Start(id string, rmEnv, nmEnv, ctEnv *jre.Env) (*Cluster, error) {
	c := &Cluster{
		rmEnv: rmEnv, nmEnv: nmEnv, ctEnv: ctEnv,
		rmAddr: "mr-" + id + "-rm:8030",
		nmAddr: "mr-" + id + "-nm:8040",
		ctAddr: "mr-" + id + "-ct:8050",
		RMLog:  dlog.New(rmEnv.Agent),
		apps:   make(map[string]*Report),
	}
	var err error
	if c.ct, err = rpc.Serve(ctEnv, c.ctAddr); err != nil {
		return nil, err
	}
	rpc.HandleObject(c.ct, "runTask", func() *TaskSpec { return &TaskSpec{} }, c.runContainerTask)

	if c.nm, err = rpc.Serve(nmEnv, c.nmAddr); err != nil {
		c.ct.Close()
		return nil, err
	}
	rpc.HandleObject(c.nm, "launchContainer", func() *TaskSpec { return &TaskSpec{} }, c.launchContainer)

	if c.rm, err = rpc.Serve(rmEnv, c.rmAddr); err != nil {
		c.nm.Close()
		c.ct.Close()
		return nil, err
	}
	rpc.HandleObject(c.rm, "submitApplication", func() *SubmitJob { return &SubmitJob{} }, c.submitApplication)
	rpc.HandleObject(c.rm, "getApplicationReport", func() *Report { return &Report{} }, c.getApplicationReport)
	return c, nil
}

// RMAddr returns the ResourceManager's RPC address.
func (c *Cluster) RMAddr() string { return c.rmAddr }

// Stop shuts all daemons down.
func (c *Cluster) Stop() {
	c.rm.Close()
	c.nm.Close()
	c.ct.Close()
}

// submitApplication handles a client submission on the RM: it records
// the app, logs the queue (the SIM sink fires here if the queue name is
// tainted), and synchronously drives the NM.
func (c *Cluster) submitApplication(req *SubmitJob) (*Ack, error) {
	c.RMLog.Info("Accepted application %s in queue %s", req.AppID, req.Queue)
	c.mu.Lock()
	c.apps[req.AppID.Value] = &Report{AppID: req.AppID, State: taint.String{Value: StateRunning}}
	c.mu.Unlock()

	spec := &TaskSpec{AppID: req.AppID, Samples: req.Samples}
	var result TaskResult
	if err := rpc.CallOnce(c.rmEnv, c.nmAddr, "launchContainer", spec, &result); err != nil {
		return nil, fmt.Errorf("mapreduce: launch container: %w", err)
	}
	c.mu.Lock()
	c.apps[result.AppID.Value] = &Report{
		AppID: result.AppID,
		State: taint.String{Value: StateFinished},
		Pi:    result.Pi,
		PiTag: result.PiTag,
	}
	c.mu.Unlock()
	return &Ack{OK: true}, nil
}

// launchContainer runs on the NM: it forwards the task to the container
// host and relays the result.
func (c *Cluster) launchContainer(spec *TaskSpec) (*TaskResult, error) {
	var result TaskResult
	if err := rpc.CallOnce(c.nmEnv, c.ctAddr, "runTask", spec, &result); err != nil {
		return nil, fmt.Errorf("mapreduce: run task: %w", err)
	}
	return &result, nil
}

// runContainerTask is the container work: estimate Pi by Monte-Carlo
// sampling (the paper's "job to calculate the value of Pi").
func (c *Cluster) runContainerTask(spec *TaskSpec) (*TaskResult, error) {
	n := spec.Samples.Value
	if n <= 0 {
		return nil, fmt.Errorf("mapreduce: bad sample count %d", n)
	}
	rng := rand.New(rand.NewSource(42))
	inside := int64(0)
	for i := int64(0); i < n; i++ {
		x, y := rng.Float64(), rng.Float64()
		if x*x+y*y <= 1 {
			inside++
		}
	}
	pi := 4 * float64(inside) / float64(n)
	// The result derives from the job the tainted AppID identifies; the
	// report's Pi carries that provenance.
	return &TaskResult{
		AppID:  spec.AppID,
		Pi:     pi,
		PiTag:  spec.AppID.Label,
		Inside: taint.Int64{Value: inside, Label: spec.Samples.Label},
	}, nil
}

// getApplicationReport answers the client's poll.
func (c *Cluster) getApplicationReport(req *Report) (*Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, ok := c.apps[req.AppID.Value]
	if !ok {
		return nil, fmt.Errorf("mapreduce: unknown application %q", req.AppID.Value)
	}
	out := *rep
	return &out, nil
}

// Client drives jobs against a cluster from its own node.
type Client struct {
	env    *jre.Env
	rmAddr string
	seq    int
}

// NewClient builds a job client.
func NewClient(env *jre.Env, rmAddr string) *Client {
	return &Client{env: env, rmAddr: rmAddr}
}

// SubmitPiJob generates an ApplicationID (the SDT source point),
// submits the Pi job with the given queue name, and returns the id.
func (cl *Client) SubmitPiJob(queue taint.String, samples int64) (taint.String, error) {
	cl.seq++
	appID := taint.String{
		Value: fmt.Sprintf("application_%04d", cl.seq),
		Label: cl.env.Agent.Source(SourceAppID, "ApplicationID"),
	}
	req := &SubmitJob{AppID: appID, Queue: queue, Samples: taint.Int64{Value: samples}}
	var ack Ack
	if err := rpc.CallOnce(cl.env, cl.rmAddr, "submitApplication", req, &ack); err != nil {
		return taint.String{}, err
	}
	if !ack.OK {
		return taint.String{}, fmt.Errorf("mapreduce: submission rejected")
	}
	return appID, nil
}

// GetApplicationReport polls the RM and runs the SDT sink check over
// the returned report.
func (cl *Client) GetApplicationReport(appID taint.String) (*Report, error) {
	var rep Report
	if err := rpc.CallOnce(cl.env, cl.rmAddr, "getApplicationReport", &Report{AppID: appID}, &rep); err != nil {
		return nil, err
	}
	cl.env.Agent.CheckSink(SinkReport, rep.AppID.Label, rep.PiTag)
	return &rep, nil
}

// LoadJobConf reads a job configuration file; the returned queue name
// carries the SIM source taint.
func (cl *Client) LoadJobConf(path string) (taint.String, error) {
	b, err := jre.ReadFileTainted(cl.env, path, SourceJobConf, "conf")
	if err != nil {
		return taint.String{}, err
	}
	return taint.StringOf(b), nil
}
