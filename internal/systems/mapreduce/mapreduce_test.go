package mapreduce

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/dlog"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// rig builds RM/NM/container/client envs sharing one network and store.
func rig(t *testing.T, mode tracker.Mode, opts ...tracker.Option) (*Cluster, *Client) {
	t.Helper()
	net := netsim.New()
	store := taintmap.NewStore()
	mk := func(name string) *jre.Env {
		a := tracker.New(name, mode)
		all := append([]tracker.Option{tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree()))}, opts...)
		a = tracker.New(name, mode, all...)
		return jre.NewEnv(net, a)
	}
	cluster, err := Start("t", mk("rm"), mk("nm"), mk("container"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	return cluster, NewClient(mk("client"), cluster.RMAddr())
}

func TestPiJobComputesPi(t *testing.T) {
	_, client := rig(t, tracker.ModeOff)
	appID, err := client.SubmitPiJob(taint.String{Value: "default"}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := client.GetApplicationReport(appID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.State.Value != StateFinished {
		t.Fatalf("state = %q", rep.State.Value)
	}
	if math.Abs(rep.Pi-math.Pi) > 0.1 {
		t.Fatalf("pi = %v", rep.Pi)
	}
}

// TestSDTApplicationIDTrace is the Table IV MapReduce SDT scenario: the
// ApplicationID source taint must surface at getApplicationReport after
// the client -> RM -> NM -> container -> back round trip.
func TestSDTApplicationIDTrace(t *testing.T) {
	_, client := rig(t, tracker.ModeDista)
	appID, err := client.SubmitPiJob(taint.String{Value: "default"}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if appID.Label.Empty() {
		t.Fatal("ApplicationID must be tainted at the source")
	}
	rep, err := client.GetApplicationReport(appID)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AppID.Label.Has("ApplicationID") {
		t.Fatal("report AppID lost its taint across four hops")
	}
	if !rep.PiTag.Has("ApplicationID") {
		t.Fatal("the Pi result must carry the job's provenance")
	}
	tags := client.env.Agent.SinkTagValues(SinkReport)
	if len(tags) != 1 || tags[0] != "ApplicationID" {
		t.Fatalf("sink tags = %v, want exactly [ApplicationID]", tags)
	}
}

// TestSDTPhosphorNoCrossNodeTransport: under intra-node-only tracking
// no taint generated on the client may ever be *transported* to another
// node. (The client itself may observe a stale local artifact through
// its reused channel buffer — the Fig. 4 wrong flow — so the assertion
// is about taint origins, not mere presence.)
func TestSDTPhosphorNoCrossNodeTransport(t *testing.T) {
	cluster, client := rig(t, tracker.ModePhosphor)
	appID, err := client.SubmitPiJob(taint.String{Value: "default"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.GetApplicationReport(appID); err != nil {
		t.Fatal(err)
	}
	// Any taint the client's sink saw must be its own stale artifact.
	for _, o := range client.env.Agent.Observations() {
		for _, k := range o.Taint.Keys() {
			if k.LocalID != client.env.Agent.LocalID() {
				t.Fatalf("phosphor transported a remote taint %v", k)
			}
		}
	}
	// The RM logged the AppID it received; that value must be clean.
	if cluster.RMLog.TaintedCount() != 0 {
		t.Fatal("phosphor mode delivered a tainted value to the RM log")
	}
}

// TestSIMConfLeakToRMLog is the SIM scenario: the queue name read from
// the client's config file must fire the RM's LOG.info sink.
func TestSIMConfLeakToRMLog(t *testing.T) {
	// A real SIM run restricts sources to file reads and sinks to
	// LOG.info (§V-B), so the ApplicationID source stays dormant.
	spec := tracker.NewSpec([]string{SourceJobConf}, []string{dlog.SinkDesc})
	cluster, client := rig(t, tracker.ModeDista, tracker.WithSpec(spec))
	dir := t.TempDir()
	conf := filepath.Join(dir, "job.conf")
	if err := os.WriteFile(conf, []byte("production-queue"), 0o644); err != nil {
		t.Fatal(err)
	}
	queue, err := client.LoadJobConf(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !queue.Label.Has("conf1") {
		t.Fatalf("queue label = %v", queue.Label)
	}
	if _, err := client.SubmitPiJob(queue, 1000); err != nil {
		t.Fatal(err)
	}
	tags := cluster.rmEnv.Agent.SinkTagValues(dlog.SinkDesc)
	if len(tags) != 1 || tags[0] != "conf1" {
		t.Fatalf("RM LOG#info tags = %v, want [conf1]", tags)
	}
	// The taint's origin is the client node, proving cross-node flow.
	origin := ""
	for _, o := range cluster.rmEnv.Agent.Observations() {
		for _, k := range o.Taint.Keys() {
			if k.Value == "conf1" {
				origin = k.LocalID
			}
		}
	}
	if origin != "client:1" {
		t.Fatalf("taint origin = %q, want client:1", origin)
	}
	// The RM's log text actually contains the leaked value.
	leaked := false
	for _, e := range cluster.RMLog.Entries() {
		if e.Tainted && strings.Contains(e.Message, "production-queue") {
			leaked = true
		}
	}
	if !leaked {
		t.Fatal("RM log never printed the tainted queue name")
	}
}

func TestUnknownApplication(t *testing.T) {
	_, client := rig(t, tracker.ModeOff)
	_, err := client.GetApplicationReport(taint.String{Value: "application_9999"})
	if err == nil || !strings.Contains(err.Error(), "unknown application") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadSampleCount(t *testing.T) {
	_, client := rig(t, tracker.ModeOff)
	_, err := client.SubmitPiJob(taint.String{Value: "q"}, 0)
	if err == nil {
		t.Fatal("zero samples must fail")
	}
}

func TestSequentialJobsGetDistinctIDs(t *testing.T) {
	_, client := rig(t, tracker.ModeOff)
	a, err := client.SubmitPiJob(taint.String{Value: "q"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.SubmitPiJob(taint.String{Value: "q"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value == b.Value {
		t.Fatalf("duplicate app ids %q", a.Value)
	}
}
