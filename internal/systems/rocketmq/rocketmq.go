// Package rocketmq is the mini-RocketMQ of the evaluation (DSN'22
// Table III row 4): a broker with a commit log, a producer pushing long
// text messages and a consumer pulling them — all over the minette
// (Netty-analogue) framed transport, matching RocketMQ's Netty-based
// remoting.
//
// SDT scenario (Table IV): the producer's Message is the source; the
// MessageExt received on the consumer is the sink.
//
// SIM scenario: the broker reads its configuration file (source) and
// stamps its broker name into every pull response; the consumer logs
// the broker name (LOG.info sink) — a server-to-client leak.
package rocketmq

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"dista/internal/core/taint"
	"dista/internal/dlog"
	"dista/internal/jre"
	"dista/internal/minette"
)

// Taint point descriptors of the RocketMQ scenarios.
const (
	// SourceMessage is the SDT source: the producer's Message variable.
	SourceMessage = "Producer#Message"
	// SinkConsume is the SDT sink: the MessageExt on the consumer.
	SinkConsume = "Consumer#MessageExt"
	// SourceBrokerConf is the SIM source: the broker's config file.
	SourceBrokerConf = "BrokerConfig#load"
)

// command codes of the remoting protocol.
const (
	codeSend     = byte(1)
	codeSendAck  = byte(2)
	codePull     = byte(3)
	codePullResp = byte(4)
	codeError    = byte(9)
)

// Message is the producer-side payload.
type Message struct {
	Topic taint.String
	Body  taint.Bytes
}

// MessageExt is the stored/delivered form with broker metadata.
type MessageExt struct {
	Message
	QueueOffset taint.Int64
	BrokerName  taint.String
}

// command is the single remoting unit.
type command struct {
	Code   byte
	Topic  taint.String
	Body   taint.Bytes
	Offset taint.Int64
	Max    taint.Int32
	Broker taint.String
	Count  taint.Int32
	Msgs   []MessageExt
	Err    taint.String
}

var _ jre.Serializable = (*command)(nil)

// WriteTo implements jre.Serializable.
func (c *command) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteByteValue(c.Code, taint.Taint{}); err != nil {
		return err
	}
	if err := w.WriteString32(c.Topic); err != nil {
		return err
	}
	if err := w.WriteBytes32(c.Body); err != nil {
		return err
	}
	if err := w.WriteInt64(c.Offset); err != nil {
		return err
	}
	if err := w.WriteInt32(c.Max); err != nil {
		return err
	}
	if err := w.WriteString32(c.Broker); err != nil {
		return err
	}
	if err := w.WriteInt32(taint.Int32{Value: int32(len(c.Msgs))}); err != nil {
		return err
	}
	for i := range c.Msgs {
		m := &c.Msgs[i]
		if err := w.WriteString32(m.Topic); err != nil {
			return err
		}
		if err := w.WriteBytes32(m.Body); err != nil {
			return err
		}
		if err := w.WriteInt64(m.QueueOffset); err != nil {
			return err
		}
		if err := w.WriteString32(m.BrokerName); err != nil {
			return err
		}
	}
	return w.WriteString32(c.Err)
}

// ReadFrom implements jre.Serializable.
func (c *command) ReadFrom(r *jre.DataInputStream) error {
	code, _, err := r.ReadByteValue()
	if err != nil {
		return err
	}
	c.Code = code
	if c.Topic, err = r.ReadString32(); err != nil {
		return err
	}
	if c.Body, err = r.ReadBytes32(); err != nil {
		return err
	}
	if c.Offset, err = r.ReadInt64(); err != nil {
		return err
	}
	if c.Max, err = r.ReadInt32(); err != nil {
		return err
	}
	if c.Broker, err = r.ReadString32(); err != nil {
		return err
	}
	n, err := r.ReadInt32()
	if err != nil {
		return err
	}
	c.Msgs = make([]MessageExt, n.Value)
	for i := range c.Msgs {
		m := &c.Msgs[i]
		if m.Topic, err = r.ReadString32(); err != nil {
			return err
		}
		if m.Body, err = r.ReadBytes32(); err != nil {
			return err
		}
		if m.QueueOffset, err = r.ReadInt64(); err != nil {
			return err
		}
		if m.BrokerName, err = r.ReadString32(); err != nil {
			return err
		}
	}
	c.Err, err = r.ReadString32()
	return err
}

// Broker stores messages per topic in a commit log and serves
// send/pull commands.
type Broker struct {
	Env  *jre.Env
	Log  *dlog.Logger
	name taint.String

	server  *minette.ServerBootstrap
	logFile *os.File

	mu     sync.Mutex
	queues map[string][]MessageExt
}

// StartBroker launches a broker at addr. confPath (optional) is the
// broker config file whose first line is the broker name — read through
// the SIM source point. logPath (optional) appends every stored message
// to a commit-log file on disk.
func StartBroker(env *jre.Env, addr, confPath, logPath string) (*Broker, error) {
	b := &Broker{
		Env:    env,
		Log:    dlog.New(env.Agent),
		name:   taint.String{Value: "broker-a"},
		queues: make(map[string][]MessageExt),
	}
	if confPath != "" {
		raw, err := jre.ReadFileTainted(env, confPath, SourceBrokerConf, "brokerConf")
		if err != nil {
			return nil, err
		}
		b.name = taint.StringOf(raw)
	}
	if logPath != "" {
		f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		b.logFile = f
	}
	b.server = minette.NewServerBootstrap(env, func() []minette.Handler {
		return []minette.Handler{&minette.LengthFieldCodec{}, brokerHandler{b: b}}
	}, nil)
	if err := b.server.Bind(addr); err != nil {
		if b.logFile != nil {
			b.logFile.Close()
		}
		return nil, err
	}
	return b, nil
}

// brokerHandler decodes commands from frames and answers them.
type brokerHandler struct {
	b *Broker
}

func (h brokerHandler) OnRead(ctx *minette.Context, msg any) error {
	frame, ok := msg.(taint.Bytes)
	if !ok {
		return fmt.Errorf("rocketmq: broker got %T", msg)
	}
	var cmd command
	if err := jre.UnmarshalObject(frame, &cmd); err != nil {
		return err
	}
	resp := h.b.handle(&cmd)
	out, err := jre.MarshalObject(resp)
	if err != nil {
		return err
	}
	return ctx.Channel().Write(out)
}

// handle executes one command against the store.
func (b *Broker) handle(cmd *command) *command {
	switch cmd.Code {
	case codeSend:
		offset := b.store(cmd.Topic, cmd.Body)
		return &command{Code: codeSendAck, Offset: offset}
	case codePull:
		msgs := b.fetch(cmd.Topic.Value, cmd.Offset.Value, int(cmd.Max.Value))
		return &command{Code: codePullResp, Broker: b.name, Msgs: msgs}
	default:
		return &command{Code: codeError, Err: taint.String{Value: fmt.Sprintf("bad code %d", cmd.Code)}}
	}
}

// store appends a message to the topic queue and the commit log file.
func (b *Broker) store(topic taint.String, body taint.Bytes) taint.Int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.queues[topic.Value]
	offset := taint.Int64{Value: int64(len(q))}
	b.queues[topic.Value] = append(q, MessageExt{
		Message:     Message{Topic: topic, Body: body.Clone()},
		QueueOffset: offset,
		BrokerName:  b.name,
	})
	if b.logFile != nil {
		fmt.Fprintf(b.logFile, "%s %d %d\n", topic.Value, offset.Value, body.Len())
	}
	return offset
}

// fetch returns up to max messages of a topic starting at offset.
func (b *Broker) fetch(topic string, offset int64, max int) []MessageExt {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.queues[topic]
	if offset < 0 || offset >= int64(len(q)) {
		return nil
	}
	end := offset + int64(max)
	if end > int64(len(q)) {
		end = int64(len(q))
	}
	out := make([]MessageExt, end-offset)
	copy(out, q[offset:end])
	return out
}

// QueueDepth returns the number of stored messages for a topic.
func (b *Broker) QueueDepth(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queues[topic])
}

// Close stops the broker.
func (b *Broker) Close() error {
	err := b.server.Close()
	if b.logFile != nil {
		if cerr := b.logFile.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// remotingClient correlates one in-flight command per connection.
type remotingClient struct {
	ch   *minette.Channel
	mu   sync.Mutex
	resp chan taint.Bytes
}

func dialRemoting(env *jre.Env, addr string) (*remotingClient, error) {
	rc := &remotingClient{resp: make(chan taint.Bytes, 1)}
	boot := minette.NewBootstrap(env, func() []minette.Handler {
		return []minette.Handler{&minette.LengthFieldCodec{}}
	}, func(_ *minette.Channel, msg any) {
		if b, ok := msg.(taint.Bytes); ok {
			rc.resp <- b
		}
	})
	ch, err := boot.Connect(addr)
	if err != nil {
		return nil, err
	}
	rc.ch = ch
	return rc, nil
}

// call sends one command and waits for the response.
func (rc *remotingClient) call(cmd *command) (*command, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out, err := jre.MarshalObject(cmd)
	if err != nil {
		return nil, err
	}
	if err := rc.ch.Write(out); err != nil {
		return nil, err
	}
	select {
	case frame := <-rc.resp:
		var resp command
		if err := jre.UnmarshalObject(frame, &resp); err != nil {
			return nil, err
		}
		if resp.Code == codeError {
			return nil, errors.New("rocketmq: " + resp.Err.Value)
		}
		return &resp, nil
	case <-time.After(30 * time.Second):
		return nil, errors.New("rocketmq: remoting call timed out")
	}
}

func (rc *remotingClient) close() error { return rc.ch.Close() }

// Producer sends messages to a broker.
type Producer struct {
	env *jre.Env
	rc  *remotingClient
}

// ConnectProducer dials the broker.
func ConnectProducer(env *jre.Env, brokerAddr string) (*Producer, error) {
	rc, err := dialRemoting(env, brokerAddr)
	if err != nil {
		return nil, err
	}
	return &Producer{env: env, rc: rc}, nil
}

// Send publishes a message whose body is the SDT source point; it
// returns the assigned queue offset.
func (p *Producer) Send(topic, text string) (int64, error) {
	body := taint.FromString(text, p.env.Agent.Source(SourceMessage, "Message"))
	resp, err := p.rc.call(&command{Code: codeSend, Topic: taint.String{Value: topic}, Body: body})
	if err != nil {
		return 0, err
	}
	return resp.Offset.Value, nil
}

// SendTainted publishes a message whose tainted body the caller
// supplies (e.g. content read from a tracked data file).
func (p *Producer) SendTainted(topic string, body taint.String) (int64, error) {
	resp, err := p.rc.call(&command{Code: codeSend, Topic: taint.String{Value: topic}, Body: body.Bytes()})
	if err != nil {
		return 0, err
	}
	return resp.Offset.Value, nil
}

// Close disconnects the producer.
func (p *Producer) Close() error { return p.rc.close() }

// Consumer pulls messages from a broker.
type Consumer struct {
	env *jre.Env
	Log *dlog.Logger
	rc  *remotingClient
}

// ConnectConsumer dials the broker.
func ConnectConsumer(env *jre.Env, brokerAddr string) (*Consumer, error) {
	rc, err := dialRemoting(env, brokerAddr)
	if err != nil {
		return nil, err
	}
	return &Consumer{env: env, Log: dlog.New(env.Agent), rc: rc}, nil
}

// Pull fetches up to max messages from offset; every received
// MessageExt passes the SDT sink and the broker name is logged (SIM
// sink).
func (c *Consumer) Pull(topic string, offset int64, max int) ([]MessageExt, error) {
	resp, err := c.rc.call(&command{
		Code:   codePull,
		Topic:  taint.String{Value: topic},
		Offset: taint.Int64{Value: offset},
		Max:    taint.Int32{Value: int32(max)},
	})
	if err != nil {
		return nil, err
	}
	c.Log.Info("pulled %d messages from broker %s", len(resp.Msgs), resp.Broker)
	for i := range resp.Msgs {
		c.env.Agent.CheckSink(SinkConsume, resp.Msgs[i].Body.Union())
	}
	return resp.Msgs, nil
}

// Close disconnects the consumer.
func (c *Consumer) Close() error { return c.rc.close() }
