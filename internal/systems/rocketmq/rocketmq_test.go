package rocketmq

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dista/internal/core/tracker"
	"dista/internal/dlog"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

func rig(t *testing.T, mode tracker.Mode, confPath string, opts ...tracker.Option) (*Broker, *Producer, *Consumer) {
	t.Helper()
	net := netsim.New()
	store := taintmap.NewStore()
	mk := func(name string) *jre.Env {
		a := tracker.New(name, mode)
		all := append([]tracker.Option{tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree()))}, opts...)
		a = tracker.New(name, mode, all...)
		return jre.NewEnv(net, a)
	}
	logPath := filepath.Join(t.TempDir(), "commitlog")
	broker, err := StartBroker(mk("broker"), "rmq-broker:10911", confPath, logPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { broker.Close() })
	producer, err := ConnectProducer(mk("producer"), "rmq-broker:10911")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { producer.Close() })
	consumer, err := ConnectConsumer(mk("consumer"), "rmq-broker:10911")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consumer.Close() })
	return broker, producer, consumer
}

func TestSendPullRoundTrip(t *testing.T) {
	broker, producer, consumer := rig(t, tracker.ModeOff, "")
	for i := 0; i < 3; i++ {
		off, err := producer.Send("orders", strings.Repeat("item ", 100))
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Fatalf("offset = %d, want %d", off, i)
		}
	}
	if broker.QueueDepth("orders") != 3 {
		t.Fatalf("depth = %d", broker.QueueDepth("orders"))
	}
	msgs, err := consumer.Pull("orders", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].QueueOffset.Value != 1 {
		t.Fatalf("pull = %d msgs, first offset %d", len(msgs), msgs[0].QueueOffset.Value)
	}
}

// TestSDTMessageTrace is the Table IV RocketMQ SDT scenario: the
// producer's Message taint must reach the consumer's MessageExt sink.
func TestSDTMessageTrace(t *testing.T) {
	_, producer, consumer := rig(t, tracker.ModeDista, "")
	if _, err := producer.Send("news", strings.Repeat("long text ", 1000)); err != nil {
		t.Fatal(err)
	}
	msgs, err := consumer.Pull("news", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("pulled %d", len(msgs))
	}
	if !msgs[0].Body.Union().Has("Message") {
		t.Fatal("message taint lost producer -> broker -> consumer")
	}
	tags := consumer.env.Agent.SinkTagValues(SinkConsume)
	if len(tags) != 1 || tags[0] != "Message" {
		t.Fatalf("sink tags = %v, want [Message]", tags)
	}
	for _, o := range consumer.env.Agent.Observations() {
		for _, k := range o.Taint.Keys() {
			if k.LocalID != "producer:1" {
				t.Fatalf("taint origin = %q", k.LocalID)
			}
		}
	}
}

// TestSIMBrokerNameLeak: the broker name read from broker.conf reaches
// the consumer's LOG.info sink inside the pull response.
func TestSIMBrokerNameLeak(t *testing.T) {
	dir := t.TempDir()
	conf := filepath.Join(dir, "broker.conf")
	if err := os.WriteFile(conf, []byte("broker-prod-7"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := tracker.NewSpec([]string{SourceBrokerConf}, []string{dlog.SinkDesc})
	_, producer, consumer := rig(t, tracker.ModeDista, conf, tracker.WithSpec(spec))

	if _, err := producer.Send("t", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := consumer.Pull("t", 0, 1); err != nil {
		t.Fatal(err)
	}
	tags := consumer.env.Agent.SinkTagValues(dlog.SinkDesc)
	if len(tags) != 1 || tags[0] != "brokerConf1" {
		t.Fatalf("consumer LOG#info tags = %v, want [brokerConf1]", tags)
	}
	leaked := false
	for _, e := range consumer.Log.Entries() {
		if e.Tainted && strings.Contains(e.Message, "broker-prod-7") {
			leaked = true
		}
	}
	if !leaked {
		t.Fatal("consumer log never printed the tainted broker name")
	}
}

func TestPhosphorDropsTaint(t *testing.T) {
	_, producer, consumer := rig(t, tracker.ModePhosphor, "")
	if _, err := producer.Send("news", "secret"); err != nil {
		t.Fatal(err)
	}
	msgs, err := consumer.Pull("news", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) == 1 && msgs[0].Body.Union().Has("Message") {
		t.Fatal("phosphor mode carried the message taint")
	}
}

func TestPullPastEnd(t *testing.T) {
	_, producer, consumer := rig(t, tracker.ModeOff, "")
	if _, err := producer.Send("t", "only"); err != nil {
		t.Fatal(err)
	}
	msgs, err := consumer.Pull("t", 5, 10)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("pull past end = %d msgs, %v", len(msgs), err)
	}
	msgs, err = consumer.Pull("unknown-topic", 0, 10)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("pull unknown topic = %d msgs, %v", len(msgs), err)
	}
}

func TestCommitLogWritten(t *testing.T) {
	broker, producer, _ := rig(t, tracker.ModeOff, "")
	if _, err := producer.Send("t", "payload"); err != nil {
		t.Fatal(err)
	}
	// Force the buffered file content out by closing.
	path := broker.logFile.Name()
	broker.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "t 0 7") {
		t.Fatalf("commit log = %q", data)
	}
}

func TestStartBrokerBadConfPath(t *testing.T) {
	net := netsim.New()
	a := tracker.New("b", tracker.ModeDista)
	env := jre.NewEnv(net, a)
	if _, err := StartBroker(env, "rmq-x:1", filepath.Join(t.TempDir(), "missing.conf"), ""); err == nil {
		t.Fatal("missing conf must fail broker start")
	}
}

func TestStartBrokerAddrConflict(t *testing.T) {
	net := netsim.New()
	mk := func(name string) *jre.Env {
		return jre.NewEnv(net, tracker.New(name, tracker.ModeOff))
	}
	b1, err := StartBroker(mk("b1"), "rmq-dup:1", "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	if _, err := StartBroker(mk("b2"), "rmq-dup:1", "", ""); err == nil {
		t.Fatal("duplicate address must fail")
	}
}

func TestBrokerRejectsUnknownCode(t *testing.T) {
	_, producer, _ := rig(t, tracker.ModeOff, "")
	resp, err := producer.rc.call(&command{Code: 99})
	if err == nil || resp != nil {
		t.Fatalf("unknown code: resp=%v err=%v", resp, err)
	}
	if !strings.Contains(err.Error(), "bad code") {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultBrokerName(t *testing.T) {
	broker, _, consumer := rig(t, tracker.ModeOff, "")
	if broker.name.Value != "broker-a" {
		t.Fatalf("default name = %q", broker.name.Value)
	}
	// Pull responses carry the default name.
	if _, err := consumer.Pull("t", 0, 1); err != nil {
		t.Fatal(err)
	}
}
