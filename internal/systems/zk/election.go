package zk

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/dlog"
	"dista/internal/jre"
)

// Peer is one quorum member running fast leader election. Votes flow
// through SendWorker/RecvWorker pairs over TCP object streams, the
// communication pattern of the paper's Figure 1.
type Peer struct {
	ID         int64
	Env        *jre.Env
	Log        *dlog.Logger
	DataDir    string // transaction-log directory (SIM sources)
	ConfigPath string // peer configuration file (SIM source), optional

	addr    string
	ss      *jre.ServerSocket
	senders map[int64]*jre.ObjectOutputStream
	sconns  []*jre.Socket
	recvCh  chan *Vote
	wg      sync.WaitGroup

	zxid  taint.Int64
	epoch taint.Int64

	mu     sync.Mutex
	result *Vote // the elected leader's final vote
}

// peerAddr names a peer's election listener.
func peerAddr(clusterID string, id int64) string {
	return fmt.Sprintf("zk-%s-peer%d:3888", clusterID, id)
}

// NewPeer constructs a peer; Start wires it to the others.
func NewPeer(id int64, env *jre.Env, dataDir string) *Peer {
	return &Peer{
		ID:      id,
		Env:     env,
		Log:     dlog.New(env.Agent),
		DataDir: dataDir,
		senders: make(map[int64]*jre.ObjectOutputStream),
		recvCh:  make(chan *Vote, 64),
	}
}

// loadTxnLogs reads the node's transaction-log files at startup (the
// while loop of Fig. 11): each read is a SIM source generating a fresh
// zxidN taint; only the *last* file's value is kept as the node's zxid
// and epoch — which is why only that taint ever reaches other nodes.
func (p *Peer) loadTxnLogs() error {
	if p.DataDir == "" {
		p.zxid = taint.Int64{Value: p.ID * 100}
		p.epoch = taint.Int64{Value: 1}
		return nil
	}
	entries, err := os.ReadDir(p.DataDir)
	if err != nil {
		return fmt.Errorf("zk: read txn log dir: %w", err)
	}
	var logs []string
	for _, e := range entries {
		if !e.IsDir() {
			logs = append(logs, e.Name())
		}
	}
	if len(logs) == 0 {
		return fmt.Errorf("zk: no transaction logs in %s", p.DataDir)
	}
	for _, name := range logs { // sorted by ReadDir
		b, err := jre.ReadFileTainted(p.Env, filepath.Join(p.DataDir, name), SourceTxnRead, "zxid")
		if err != nil {
			return err
		}
		if b.Len() < 8 {
			return fmt.Errorf("zk: short txn log %s", name)
		}
		// zxid = the transaction id in the (current) file; the variable
		// is overwritten each iteration, so the final value and taint
		// come from the last file only.
		p.zxid = taint.Int64{
			Value: int64(binary.BigEndian.Uint64(b.Data[:8])),
			Label: b.Slice(0, 8).Union(),
		}
	}
	// The election epoch starts equal on all peers; its value derives
	// from the recovered state, so it carries the zxid's taint (this is
	// the "assigned to epoch and sent to Node 2" flow of Fig. 11). When
	// a configuration file is present, the epoch also derives from it
	// (ZooKeeper reads zoo.cfg during recovery).
	epochLabel := p.zxid.Label
	if p.ConfigPath != "" {
		conf, err := jre.ReadFileTainted(p.Env, p.ConfigPath, SourceConfig, "zooCfg")
		if err != nil {
			return err
		}
		epochLabel = taint.Combine(epochLabel, conf.Union())
	}
	p.epoch = taint.Int64{Value: 1, Label: epochLabel}
	return nil
}

// WriteTxnLogs populates a data directory with n log files whose
// payload starts with a big-endian zxid; the last file holds the
// largest id (ZooKeeper reads logs to find the largest transaction id).
func WriteTxnLogs(dir string, ids ...int64) error {
	for i, id := range ids {
		buf := binary.BigEndian.AppendUint64(nil, uint64(id))
		buf = append(buf, []byte(fmt.Sprintf(" log entry %d", i))...)
		name := filepath.Join(dir, fmt.Sprintf("log.%02d", i+1))
		if err := os.WriteFile(name, buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// listen binds the peer's election port.
func (p *Peer) listen(clusterID string) error {
	p.addr = peerAddr(clusterID, p.ID)
	ss, err := jre.ListenSocket(p.Env, p.addr)
	if err != nil {
		return err
	}
	p.ss = ss
	return nil
}

// acceptLoop runs RecvWorkers for inbound connections.
func (p *Peer) acceptLoop(expected int) {
	for i := 0; i < expected; i++ {
		sock, err := p.ss.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.recvWorker(sock)
	}
}

// recvWorker reads votes from one peer connection (Fig. 1's RecvWorker).
func (p *Peer) recvWorker(sock *jre.Socket) {
	defer p.wg.Done()
	defer sock.Close()
	oin := jre.NewObjectInputStream(sock.InputStream())
	for {
		var v Vote
		if err := oin.ReadObject(&v); err != nil {
			return
		}
		p.recvCh <- &v
	}
}

// connectSenders opens SendWorker connections to all other peers.
func (p *Peer) connectSenders(clusterID string, ids []int64) error {
	for _, id := range ids {
		if id == p.ID {
			continue
		}
		sock, err := jre.DialSocket(p.Env, peerAddr(clusterID, id))
		if err != nil {
			return err
		}
		p.sconns = append(p.sconns, sock)
		p.senders[id] = jre.NewObjectOutputStream(sock.OutputStream())
	}
	return nil
}

// broadcast sends the vote to every other peer (SendWorker.write of
// Fig. 1).
func (p *Peer) broadcast(v *Vote) error {
	for id, out := range p.senders {
		vv := *v
		vv.FromID = p.ID
		if err := out.WriteObject(&vv); err != nil {
			return fmt.Errorf("zk: send vote to peer %d: %w", id, err)
		}
	}
	return nil
}

// runElection executes fast leader election and returns the winning
// vote. quorum is the number of peers (including self) that must agree.
func (p *Peer) runElection(total int) (*Vote, error) {
	// The initial vote proposes self — the SDT source point ("we only
	// select [the votes] which are first transferred into the network").
	vote := &Vote{
		LeaderID: taint.Int64{Value: p.ID},
		Zxid:     p.zxid,
		Epoch:    p.epoch,
	}
	if t := p.Env.Agent.Source(SourceVote, fmt.Sprintf("Vote%d", p.ID)); !t.Empty() {
		vote.LeaderID.Label = taint.Combine(vote.LeaderID.Label, t)
	}
	if err := p.broadcast(vote); err != nil {
		return nil, err
	}

	latest := make(map[int64]*Vote, total)
	for total > 1 {
		v := <-p.recvCh
		latest[v.FromID] = v
		if supersedes(v, vote) {
			// Adopt the better proposal; taints of the adopted fields
			// propagate with the values.
			adopted := &Vote{LeaderID: v.LeaderID, Zxid: v.Zxid, Epoch: v.Epoch}
			vote = adopted
			if err := p.broadcast(vote); err != nil {
				return nil, err
			}
		}
		if len(latest) == total-1 && allAgree(latest, vote) {
			break
		}
	}

	p.mu.Lock()
	p.result = vote
	p.mu.Unlock()

	if vote.LeaderID.Value != p.ID {
		// checkLeader on a follower: the SDT sink point.
		p.Env.Agent.CheckSink(SinkCheckLeader, vote.Labels())
	}
	// The SIM sink: every node logs the new epoch, printing the value
	// whose taint (zxid from the last txn log) travelled here (Fig. 11).
	p.Log.Info("LEADING/FOLLOWING: leader=%d new epoch %v", vote.LeaderID.Value, vote.Epoch)
	return vote, nil
}

func allAgree(latest map[int64]*Vote, vote *Vote) bool {
	for _, v := range latest {
		if v.LeaderID.Value != vote.LeaderID.Value {
			return false
		}
	}
	return true
}

// Result returns the elected vote once the election finished.
func (p *Peer) Result() *Vote {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.result
}

// closeConns shuts the peer's outbound connections and listener. The
// inbound RecvWorkers exit once every *other* peer has done the same,
// so shutdown is two-phase: all peers closeConns, then all peers wait.
func (p *Peer) closeConns() {
	for _, s := range p.sconns {
		s.Close()
	}
	if p.ss != nil {
		p.ss.Close()
	}
}

// wait blocks until the peer's RecvWorkers have exited.
func (p *Peer) wait() {
	p.wg.Wait()
}

// RunElection wires count peers into a full mesh and runs the election
// to completion, returning the peers for inspection. clusterID isolates
// concurrent clusters on one network.
func RunElection(clusterID string, peers []*Peer) error {
	total := len(peers)
	for _, p := range peers {
		if err := p.loadTxnLogs(); err != nil {
			return err
		}
		if err := p.listen(clusterID); err != nil {
			return err
		}
	}
	ids := make([]int64, len(peers))
	for i, p := range peers {
		ids[i] = p.ID
	}
	var acceptWG sync.WaitGroup
	for _, p := range peers {
		acceptWG.Add(1)
		go func(p *Peer) {
			defer acceptWG.Done()
			p.acceptLoop(total - 1)
		}(p)
	}
	for _, p := range peers {
		if err := p.connectSenders(clusterID, ids); err != nil {
			return err
		}
	}
	acceptWG.Wait()

	errs := make(chan error, total)
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p *Peer) {
			defer wg.Done()
			_, err := p.runElection(total)
			errs <- err
		}(p)
	}
	wg.Wait()
	close(errs)
	for _, p := range peers {
		p.closeConns()
	}
	for _, p := range peers {
		p.wait()
	}
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
