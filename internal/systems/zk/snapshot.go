package zk

import (
	"fmt"
	"os"
	"sort"

	"dista/internal/core/taint"
	"dista/internal/jre"
)

// Znode snapshot persistence: ZooKeeper periodically snapshots its data
// tree to disk and reads the snapshot back on restart. Reading a
// snapshot file is a SIM source just like reading a transaction log —
// restored payloads are tainted data whose origin is the file.

// SourceSnapshotRead is the SIM source descriptor for snapshot loads.
const SourceSnapshotRead = "FileSnap#deserialize"

// SaveSnapshot writes the server's znode tree to path. Taints are a
// runtime property and do not persist — exactly like the real system,
// where restart provenance comes from re-tainting the file read.
func (s *Server) SaveSnapshot(path string) error {
	s.mu.Lock()
	paths := make([]string, 0, len(s.nodes))
	for p := range s.nodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := jre.NewByteArrayOutputStream()
	w := jre.NewDataOutputStream(out)
	err := w.WriteInt32(taint.Int32{Value: int32(len(paths))})
	for _, p := range paths {
		if err != nil {
			break
		}
		if err = w.WriteString32(taint.String{Value: p}); err == nil {
			//lint:ignore distavet/shadowdrop snapshots persist data only; provenance is re-minted by the snapshot-read source on load
			err = w.WriteBytes32(taint.WrapBytes(s.nodes[p].Data))
		}
	}
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("zk: serialize snapshot: %w", err)
	}
	//lint:ignore distavet/shadowdrop the snapshot file format has no label section; taints are a runtime property
	return os.WriteFile(path, out.Bytes().Data, 0o644)
}

// LoadSnapshot restores the znode tree from path into the server,
// replacing its current contents. Every restored payload carries a
// fresh snapshot-read taint when the env's spec enables the source.
func (s *Server) LoadSnapshot(path string) error {
	raw, err := jre.ReadFileTainted(s.env, path, SourceSnapshotRead, "snap")
	if err != nil {
		return err
	}
	r := jre.NewDataInputStream(jre.NewByteArrayInputStream(raw))
	count, err := r.ReadInt32()
	if err != nil {
		return fmt.Errorf("zk: read snapshot header: %w", err)
	}
	nodes := make(map[string]taint.Bytes, count.Value)
	for i := int32(0); i < count.Value; i++ {
		p, err := r.ReadString32()
		if err != nil {
			return fmt.Errorf("zk: read snapshot entry %d: %w", i, err)
		}
		data, err := r.ReadBytes32()
		if err != nil {
			return fmt.Errorf("zk: read snapshot payload %d: %w", i, err)
		}
		nodes[p.Value] = data
	}
	s.mu.Lock()
	s.nodes = nodes
	s.mu.Unlock()
	return nil
}
