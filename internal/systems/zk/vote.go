// Package zk is the mini-ZooKeeper of the evaluation (DSN'22 Table III
// row 1 and the cross-system substrate of the HBase row): a
// coordination service with fast-leader-election over the instrumented
// TCP object-stream stack, transaction-log files (the SIM sources of
// Fig. 11), and a znode store with a client protocol.
package zk

import (
	"dista/internal/core/taint"
	"dista/internal/jre"
)

// Taint point descriptors of the ZooKeeper scenarios (Table IV row 1).
const (
	// SourceVote is the SDT source: the Vote variable in
	// FastLeaderElection.
	SourceVote = "FastLeaderElection#Vote"
	// SinkCheckLeader is the SDT sink: checkLeader, invoked on a
	// follower when the leader is selected.
	SinkCheckLeader = "FastLeaderElection#checkLeader"
	// SourceTxnRead is the SIM source: reading a transaction log file.
	SourceTxnRead = "FileTxnLog#read"
	// SourceConfig is the SIM source for reading the peer configuration
	// (the zoo.cfg analogue).
	SourceConfig = "QuorumPeerConfig#load"
)

// Vote is the election notification exchanged between peers (the
// Notification of Fig. 1 / the Vote of Table IV). Its fields carry
// byte-level taints across the wire.
type Vote struct {
	LeaderID taint.Int64 // proposed leader
	Zxid     taint.Int64 // proposer's last transaction id
	Epoch    taint.Int64 // proposer's election epoch
	FromID   int64       // sending peer (routing metadata)
}

var _ jre.Serializable = (*Vote)(nil)

// WriteTo implements jre.Serializable.
func (v *Vote) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteInt64(v.LeaderID); err != nil {
		return err
	}
	if err := w.WriteInt64(v.Zxid); err != nil {
		return err
	}
	if err := w.WriteInt64(v.Epoch); err != nil {
		return err
	}
	return w.WriteInt64(taint.Int64{Value: v.FromID})
}

// ReadFrom implements jre.Serializable.
func (v *Vote) ReadFrom(r *jre.DataInputStream) error {
	var err error
	if v.LeaderID, err = r.ReadInt64(); err != nil {
		return err
	}
	if v.Zxid, err = r.ReadInt64(); err != nil {
		return err
	}
	if v.Epoch, err = r.ReadInt64(); err != nil {
		return err
	}
	from, err := r.ReadInt64()
	if err != nil {
		return err
	}
	v.FromID = from.Value
	return nil
}

// supersedes reports whether candidate wins over current under the FLE
// total order (epoch, then zxid, then server id).
func supersedes(candidate, current *Vote) bool {
	if candidate.Epoch.Value != current.Epoch.Value {
		return candidate.Epoch.Value > current.Epoch.Value
	}
	if candidate.Zxid.Value != current.Zxid.Value {
		return candidate.Zxid.Value > current.Zxid.Value
	}
	return candidate.LeaderID.Value > current.LeaderID.Value
}

// Labels returns the union taint over the vote's tracked fields.
func (v *Vote) Labels() taint.Taint {
	return taint.CombineAll(v.LeaderID.Label, v.Zxid.Label, v.Epoch.Label)
}
