package zk

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// testCluster builds n peer Envs and optional txn-log dirs.
func testCluster(t *testing.T, mode tracker.Mode, n int, withLogs bool) []*Peer {
	t.Helper()
	net := netsim.New()
	store := taintmap.NewStore()
	peers := make([]*Peer, n)
	for i := range peers {
		name := []string{"zk1", "zk2", "zk3", "zk4", "zk5"}[i]
		a := tracker.New(name, mode)
		a = tracker.New(name, mode, tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())))
		env := jre.NewEnv(net, a)
		dir := ""
		if withLogs {
			dir = t.TempDir()
			// Three log files per node (Fig. 11); the last holds the
			// largest zxid. Peer ids stagger so peer 3 wins.
			base := int64(i+1) * 100
			if err := WriteTxnLogs(dir, base+1, base+2, base+3); err != nil {
				t.Fatal(err)
			}
		}
		peers[i] = NewPeer(int64(i+1), env, dir)
	}
	return peers
}

func TestElectionElectsHighestPeer(t *testing.T) {
	peers := testCluster(t, tracker.ModeDista, 3, false)
	if err := RunElection("t1", peers); err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		r := p.Result()
		if r == nil {
			t.Fatalf("peer %d has no result", p.ID)
		}
		if r.LeaderID.Value != 3 {
			t.Fatalf("peer %d elected %d, want 3 (highest zxid/id)", p.ID, r.LeaderID.Value)
		}
	}
}

// TestElectionSDTVoteTrace is the Table IV row-1 SDT scenario: the Vote
// variables are sources, checkLeader on the followers is the sink. The
// followers must observe the winning vote's taint.
func TestElectionSDTVoteTrace(t *testing.T) {
	peers := testCluster(t, tracker.ModeDista, 3, false)
	if err := RunElection("t2", peers); err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		tags := p.Env.Agent.SinkTagValues(SinkCheckLeader)
		if p.Result().LeaderID.Value == p.ID {
			if len(tags) != 0 {
				t.Fatalf("leader %d hit checkLeader: %v", p.ID, tags)
			}
			continue
		}
		// Followers adopted peer 3's vote, whose LeaderID carries Vote3.
		if !contains(tags, "Vote3") {
			t.Fatalf("follower %d checkLeader tags = %v, want Vote3", p.ID, tags)
		}
		// Precision: the followers' own initial votes never reach their
		// own sink (they were superseded, not combined).
		for _, tag := range tags {
			if tag != "Vote3" {
				t.Fatalf("follower %d observed unexpected taint %q", p.ID, tag)
			}
		}
	}
}

// TestFigure11ZxidPropagation is experiment E9: each node reads three
// txn-log files (sources zxid1..zxid3); only the last file's id is
// assigned to the zxid variable, so exactly the zxid3 taint reaches
// other nodes' LOG.info sinks.
func TestFigure11ZxidPropagation(t *testing.T) {
	peers := testCluster(t, tracker.ModeDista, 3, true)
	if err := RunElection("t3", peers); err != nil {
		t.Fatal(err)
	}
	leaderID := peers[0].Result().LeaderID.Value
	if leaderID != 3 {
		t.Fatalf("leader = %d, want 3 (largest zxid)", leaderID)
	}
	for _, p := range peers {
		tags := p.Env.Agent.SinkTagValues("LOG#info")
		if p.ID == leaderID {
			continue // the leader logs its own local taint
		}
		// The epoch printed on a follower derives from the leader's
		// zxid, which came from the leader's *third* log file.
		if !contains(tags, "zxid3") {
			t.Fatalf("peer %d LOG#info tags = %v, want zxid3", p.ID, tags)
		}
		if contains(tags, "zxid1") && originOf(p, "zxid1") != p.Env.Agent.LocalID() {
			t.Fatalf("peer %d observed a remote zxid1 taint; only the last file's id propagates", p.ID)
		}
	}
	// Cross-node check: a follower's sink must carry the *leader's*
	// zxid3 (LocalID = zk3), not merely its own.
	follower := peers[0]
	foundRemote := false
	for _, o := range follower.Env.Agent.Observations() {
		for _, k := range o.Taint.Keys() {
			if k.Value == "zxid3" && k.LocalID == "zk3:1" {
				foundRemote = true
			}
		}
	}
	if !foundRemote {
		t.Fatal("follower never observed the leader's zxid3 taint (inter-node flow missing)")
	}
}

// originOf returns the LocalID of the first observation tag with the
// given value, or "".
func originOf(p *Peer, tag string) string {
	for _, o := range p.Env.Agent.Observations() {
		for _, k := range o.Taint.Keys() {
			if k.Value == tag {
				return k.LocalID
			}
		}
	}
	return ""
}

func TestElectionPhosphorDropsCrossNodeTaint(t *testing.T) {
	peers := testCluster(t, tracker.ModePhosphor, 3, false)
	if err := RunElection("t4", peers); err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if p.Result().LeaderID.Value == p.ID {
			continue
		}
		for _, tag := range p.Env.Agent.SinkTagValues(SinkCheckLeader) {
			if tag == "Vote3" && p.ID != 3 {
				t.Fatalf("phosphor mode carried Vote3 to follower %d", p.ID)
			}
		}
	}
}

func TestElectionOffMode(t *testing.T) {
	peers := testCluster(t, tracker.ModeOff, 3, false)
	if err := RunElection("t5", peers); err != nil {
		t.Fatal(err)
	}
	if peers[0].Result().LeaderID.Value != 3 {
		t.Fatal("off mode must still elect correctly")
	}
	for _, p := range peers {
		if len(p.Env.Agent.Observations()) != 0 {
			t.Fatal("off mode must observe nothing")
		}
	}
}

func TestElectionFivePeers(t *testing.T) {
	peers := testCluster(t, tracker.ModeDista, 5, false)
	if err := RunElection("t6", peers); err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if p.Result().LeaderID.Value != 5 {
			t.Fatalf("peer %d elected %d", p.ID, p.Result().LeaderID.Value)
		}
	}
}

func znodeRig(t *testing.T, mode tracker.Mode) (*Server, *Client, *Client) {
	t.Helper()
	net := netsim.New()
	store := taintmap.NewStore()
	mk := func(name string) *jre.Env {
		a := tracker.New(name, mode)
		a = tracker.New(name, mode, tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())))
		return jre.NewEnv(net, a)
	}
	srv, err := StartServer(mk("zkserver"), "zk:2181")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c1, err := DialClient(mk("client1"), "zk:2181")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c1.Close() })
	c2, err := DialClient(mk("client2"), "zk:2181")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	return srv, c1, c2
}

func TestZnodeCRUD(t *testing.T) {
	srv, c1, c2 := znodeRig(t, tracker.ModeDista)
	if err := c1.Create(taint.String{Value: "/hbase"}, taint.Bytes{}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Create(taint.String{Value: "/hbase/rs1"}, taint.WrapBytes([]byte("region1"))); err != nil {
		t.Fatal(err)
	}
	if err := c1.Create(taint.String{Value: "/hbase/rs1"}, taint.Bytes{}); err == nil {
		t.Fatal("duplicate create must fail")
	}
	got, err := c2.Get(taint.String{Value: "/hbase/rs1"})
	if err != nil || string(got.Data) != "region1" {
		t.Fatalf("get = %q, %v", got.Data, err)
	}
	if !c2.Exists("/hbase/rs1") || c2.Exists("/nope") {
		t.Fatal("exists broken")
	}
	if err := c2.Set(taint.String{Value: "/hbase/rs1"}, taint.WrapBytes([]byte("v2"))); err != nil {
		t.Fatal(err)
	}
	got, _ = c1.Get(taint.String{Value: "/hbase/rs1"})
	if string(got.Data) != "v2" {
		t.Fatal("set not visible across clients")
	}
	if err := c1.Create(taint.String{Value: "/hbase/rs2"}, taint.Bytes{}); err != nil {
		t.Fatal(err)
	}
	kids, err := c2.Children("/hbase")
	if err != nil || !reflect.DeepEqual(kids, []string{"rs1", "rs2"}) {
		t.Fatalf("children = %v, %v", kids, err)
	}
	if err := c1.Delete("/hbase/rs2"); err != nil {
		t.Fatal(err)
	}
	if c2.Exists("/hbase/rs2") {
		t.Fatal("delete broken")
	}
	if srv.NodeCount() != 2 {
		t.Fatalf("node count = %d", srv.NodeCount())
	}
	if _, err := c1.Get(taint.String{Value: "/missing"}); err == nil || !strings.Contains(err.Error(), "no node") {
		t.Fatalf("get missing = %v", err)
	}
}

// TestZnodeTaintCrossesClients is the cross-system flow in miniature:
// client1's tainted payload lands on the server and reaches client2
// with the taint intact.
func TestZnodeTaintCrossesClients(t *testing.T) {
	_, c1, c2 := znodeRig(t, tracker.ModeDista)
	secret := taint.FromString("rs-host-7", c1.Env().Agent.Source("RegionServer#name", "ServerName"))
	if err := c1.Create(taint.String{Value: "/hbase/rs/host7"}, secret); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Get(taint.String{Value: "/hbase/rs/host7"})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Union().Has("ServerName") {
		t.Fatal("taint lost through the znode store (client1 -> server -> client2)")
	}
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	srv, c1, c2 := znodeRig(t, tracker.ModeDista)
	for _, kv := range [][2]string{{"/a", "1"}, {"/a/b", "2"}, {"/c", "3"}} {
		if err := c1.Create(taint.String{Value: kv[0]}, taint.WrapBytes([]byte(kv[1]))); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "snapshot.0")
	if err := srv.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	// Wipe and restore.
	if err := c1.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Get(taint.String{Value: "/a"})
	if err != nil || string(got.Data) != "1" {
		t.Fatalf("restored /a = %q, %v", got.Data, err)
	}
	if srv.NodeCount() != 3 {
		t.Fatalf("restored %d nodes", srv.NodeCount())
	}
	// Restored data carries the snapshot-read taint (SIM source) and
	// that taint crosses to clients.
	if !got.Union().Has("snap1") {
		t.Fatalf("restored payload taint = %v, want snap1", got.Union())
	}
}

func TestSnapshotLoadErrors(t *testing.T) {
	srv, _, _ := znodeRig(t, tracker.ModeOff)
	dir := t.TempDir()
	if err := srv.LoadSnapshot(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing snapshot must error")
	}
	bad := filepath.Join(dir, "corrupt")
	if err := os.WriteFile(bad, []byte{1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadSnapshot(bad); err == nil {
		t.Fatal("corrupt snapshot must error")
	}
}

func TestWatchExistsFiresOnCreate(t *testing.T) {
	_, c1, c2 := znodeRig(t, tracker.ModeDista)
	got := make(chan taint.Bytes, 1)
	errs := make(chan error, 1)
	go func() {
		data, err := c2.WatchExists("/hbase/master-elected")
		if err != nil {
			errs <- err
			return
		}
		got <- data
	}()
	// Give the watcher time to register, then create the node with a
	// tainted payload.
	secret := taint.FromString("master-7", c1.Env().Agent.Source("Master#name", "MasterName"))
	if err := c1.Create(taint.String{Value: "/hbase/master-elected"}, secret); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if string(data.Data) != "master-7" || !data.Union().Has("MasterName") {
			t.Fatalf("watch delivered %q with %v", data.Data, data.Union())
		}
	case err := <-errs:
		t.Fatal(err)
	}
}

func TestWatchExistsImmediateWhenPresent(t *testing.T) {
	_, c1, c2 := znodeRig(t, tracker.ModeDista)
	if err := c1.Create(taint.String{Value: "/already"}, taint.WrapBytes([]byte("here"))); err != nil {
		t.Fatal(err)
	}
	data, err := c2.WatchExists("/already")
	if err != nil || string(data.Data) != "here" {
		t.Fatalf("watch = %q, %v", data.Data, err)
	}
}

func TestSinglePeerElection(t *testing.T) {
	peers := testCluster(t, tracker.ModeDista, 1, false)
	if err := RunElection("solo", peers); err != nil {
		t.Fatal(err)
	}
	if got := peers[0].Result().LeaderID.Value; got != 1 {
		t.Fatalf("solo leader = %d", got)
	}
}
