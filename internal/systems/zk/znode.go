package zk

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/jre"
)

// The znode service: a standalone mini-ZooKeeper server holding a
// hierarchical key space of tainted payloads, with a simple
// object-stream client protocol. The HBase miniature coordinates
// through it, making its workload the paper's cross-system scenario.

// znode op codes.
const (
	opCreate  = byte(1)
	opSet     = byte(2)
	opGet     = byte(3)
	opExists  = byte(4)
	opList    = byte(5)
	opDelete  = byte(6)
	opWatch   = byte(7)
	statusOK  = byte(0)
	statusErr = byte(1)
)

// request is the client->server frame.
type request struct {
	Op   byte
	Path taint.String
	Data taint.Bytes
}

func (r *request) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteByteValue(r.Op, taint.Taint{}); err != nil {
		return err
	}
	if err := w.WriteString32(r.Path); err != nil {
		return err
	}
	return w.WriteBytes32(r.Data)
}

func (r *request) ReadFrom(rd *jre.DataInputStream) error {
	op, _, err := rd.ReadByteValue()
	if err != nil {
		return err
	}
	r.Op = op
	if r.Path, err = rd.ReadString32(); err != nil {
		return err
	}
	r.Data, err = rd.ReadBytes32()
	return err
}

// response is the server->client frame. Children is a newline-joined
// list for opList.
type response struct {
	Status byte
	Data   taint.Bytes
	Msg    taint.String
}

func (r *response) WriteTo(w *jre.DataOutputStream) error {
	if err := w.WriteByteValue(r.Status, taint.Taint{}); err != nil {
		return err
	}
	if err := w.WriteBytes32(r.Data); err != nil {
		return err
	}
	return w.WriteString32(r.Msg)
}

func (r *response) ReadFrom(rd *jre.DataInputStream) error {
	status, _, err := rd.ReadByteValue()
	if err != nil {
		return err
	}
	r.Status = status
	if r.Data, err = rd.ReadBytes32(); err != nil {
		return err
	}
	r.Msg, err = rd.ReadString32()
	return err
}

// Server is a standalone znode server.
type Server struct {
	env *jre.Env
	ss  *jre.ServerSocket

	mu        sync.Mutex
	watchCond *sync.Cond
	version   int64 // bumped on every mutation, wakes watchers
	nodes     map[string]taint.Bytes
	done      chan struct{}
}

// StartServer binds a znode server at addr.
func StartServer(env *jre.Env, addr string) (*Server, error) {
	ss, err := jre.ListenSocket(env, addr)
	if err != nil {
		return nil, err
	}
	s := &Server{env: env, ss: ss, nodes: make(map[string]taint.Bytes), done: make(chan struct{})}
	s.watchCond = sync.NewCond(&s.mu)
	go s.acceptLoop()
	return s, nil
}

func (s *Server) acceptLoop() {
	defer close(s.done)
	for {
		sock, err := s.ss.Accept()
		if err != nil {
			return
		}
		go s.serveConn(sock)
	}
}

func (s *Server) serveConn(sock *jre.Socket) {
	defer sock.Close()
	oin := jre.NewObjectInputStream(sock.InputStream())
	oout := jre.NewObjectOutputStream(sock.OutputStream())
	for {
		var req request
		if err := oin.ReadObject(&req); err != nil {
			return
		}
		var resp *response
		if req.Op == opWatch {
			resp = s.awaitNode(req.Path.Value)
		} else {
			resp = s.apply(&req)
		}
		if err := oout.WriteObject(resp); err != nil {
			return
		}
	}
}

// awaitNode long-polls until the watched path exists, then returns its
// payload — the one-shot exists-watch of the znode protocol. It wakes
// on every tree mutation.
func (s *Server) awaitNode(path string) *response {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if data, ok := s.nodes[path]; ok {
			return &response{Status: statusOK, Data: data.Clone()}
		}
		s.watchCond.Wait()
	}
}

// bump wakes watchers after a mutation; callers hold s.mu.
func (s *Server) bump() {
	s.version++
	s.watchCond.Broadcast()
}

// apply executes one operation against the znode tree.
func (s *Server) apply(req *request) *response {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := req.Path.Value
	switch req.Op {
	case opCreate:
		if _, ok := s.nodes[path]; ok {
			return errResp("node exists: " + path)
		}
		s.nodes[path] = req.Data.Clone()
		s.bump()
		return &response{Status: statusOK}
	case opSet:
		s.nodes[path] = req.Data.Clone()
		s.bump()
		return &response{Status: statusOK}
	case opGet:
		data, ok := s.nodes[path]
		if !ok {
			return errResp("no node: " + path)
		}
		return &response{Status: statusOK, Data: data.Clone()}
	case opExists:
		if _, ok := s.nodes[path]; ok {
			return &response{Status: statusOK}
		}
		return errResp("no node: " + path)
	case opList:
		var kids []string
		prefix := strings.TrimSuffix(path, "/") + "/"
		for p := range s.nodes {
			if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
				kids = append(kids, p[len(prefix):])
			}
		}
		sort.Strings(kids)
		return &response{Status: statusOK, Data: taint.WrapBytes([]byte(strings.Join(kids, "\n")))}
	case opDelete:
		delete(s.nodes, path)
		s.bump()
		return &response{Status: statusOK}
	default:
		return errResp(fmt.Sprintf("bad op %d", req.Op))
	}
}

func errResp(msg string) *response {
	return &response{Status: statusErr, Msg: taint.String{Value: msg}}
}

// NodeCount returns the number of stored znodes.
func (s *Server) NodeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.nodes)
}

// Close stops the server.
func (s *Server) Close() error {
	err := s.ss.Close()
	<-s.done
	return err
}

// Client is a connection to a znode server.
type Client struct {
	env  *jre.Env
	mu   sync.Mutex
	sock *jre.Socket
	out  *jre.ObjectOutputStream
	in   *jre.ObjectInputStream
}

// DialClient connects to a znode server.
func DialClient(env *jre.Env, addr string) (*Client, error) {
	sock, err := jre.DialSocket(env, addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		env:  env,
		sock: sock,
		out:  jre.NewObjectOutputStream(sock.OutputStream()),
		in:   jre.NewObjectInputStream(sock.InputStream()),
	}, nil
}

func (c *Client) call(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.out.WriteObject(req); err != nil {
		return nil, err
	}
	var resp response
	if err := c.in.ReadObject(&resp); err != nil {
		return nil, err
	}
	if resp.Status != statusOK {
		return nil, fmt.Errorf("zk: %s", resp.Msg.Value)
	}
	return &resp, nil
}

// Create stores a new znode.
func (c *Client) Create(path taint.String, data taint.Bytes) error {
	_, err := c.call(&request{Op: opCreate, Path: path, Data: data})
	return err
}

// Set overwrites a znode.
func (c *Client) Set(path taint.String, data taint.Bytes) error {
	_, err := c.call(&request{Op: opSet, Path: path, Data: data})
	return err
}

// Get fetches a znode's payload.
func (c *Client) Get(path taint.String) (taint.Bytes, error) {
	resp, err := c.call(&request{Op: opGet, Path: path})
	if err != nil {
		return taint.Bytes{}, err
	}
	return resp.Data, nil
}

// Exists reports whether a znode exists.
func (c *Client) Exists(path string) bool {
	_, err := c.call(&request{Op: opExists, Path: taint.String{Value: path}})
	return err == nil
}

// Children lists the direct children of a path.
func (c *Client) Children(path string) ([]string, error) {
	resp, err := c.call(&request{Op: opList, Path: taint.String{Value: path}})
	if err != nil {
		return nil, err
	}
	if resp.Data.Len() == 0 {
		return nil, nil
	}
	return strings.Split(string(resp.Data.Data), "\n"), nil
}

// WatchExists blocks until the path exists and returns its payload —
// the long-poll form of a ZooKeeper exists-watch. Use a dedicated
// client connection for long watches: the call occupies the connection
// until it fires.
func (c *Client) WatchExists(path string) (taint.Bytes, error) {
	resp, err := c.call(&request{Op: opWatch, Path: taint.String{Value: path}})
	if err != nil {
		return taint.Bytes{}, err
	}
	return resp.Data, nil
}

// Delete removes a znode.
func (c *Client) Delete(path string) error {
	_, err := c.call(&request{Op: opDelete, Path: taint.String{Value: path}})
	return err
}

// Env returns the client's process environment.
func (c *Client) Env() *jre.Env { return c.env }

// Close tears the connection down.
func (c *Client) Close() error { return c.sock.Close() }
