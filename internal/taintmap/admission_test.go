package taintmap

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

// TestAdmissionGate exercises the semaphore directly: maxActive slots
// execute, maxWait callers queue, and everything beyond sheds.
func TestAdmissionGate(t *testing.T) {
	a := newAdmission(1, 1)
	if !a.admit() {
		t.Fatal("first admit refused")
	}
	// One waiter fits the queue; it must block until release.
	admitted := make(chan bool, 1)
	go func() { admitted <- a.admit() }()
	for i := 0; i < 100 && a.queued.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-admitted:
		t.Fatal("queued caller admitted while the slot was held")
	default:
	}
	// Queue is full now: the next caller sheds immediately.
	if a.admit() {
		t.Fatal("over-queue admit granted")
	}
	a.release()
	select {
	case ok := <-admitted:
		if !ok {
			t.Fatal("queued caller shed after a slot freed")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued caller never admitted")
	}
	a.release()

	if got := a.shed.Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	if got := a.queued.Load(); got != 1 {
		t.Fatalf("queued = %d, want 1", got)
	}
	if got := a.admitted.Load(); got != 2 {
		t.Fatalf("admitted = %d, want 2", got)
	}
}

// TestAdmissionShedReply: a server whose gate is saturated answers
// ErrOverloaded on the wire instead of stalling or dropping — the
// client sees a typed error it can match with errors.Is.
func TestAdmissionShedReply(t *testing.T) {
	n := netsim.New()
	l, err := n.Listen("tm:1")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewStore(), simAcceptor{l: l}, nil, WithAdmission(1, 0))
	srv.Start()
	defer srv.Close()

	// Saturate the single slot from the outside so the next request has
	// nowhere to queue.
	srv.adm.admit()

	tree := taint.NewTree()
	rc, err := DialSim(n, "tm:1", tree)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	_, err = rc.Register(tree.NewSource("shed-me", "h:1"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("register against saturated gate = %v, want ErrOverloaded", err)
	}

	// Once the gate frees, the same connection serves normally.
	srv.adm.release()
	id, err := rc.Register(tree.NewSource("shed-me", "h:1"))
	if err != nil || id == 0 {
		t.Fatalf("register after gate freed = %d, %v", id, err)
	}

	st := srv.Stats()
	if st.ShedReqs == 0 {
		t.Fatalf("Stats().ShedReqs = 0, want > 0")
	}
	if st.AdmittedReqs == 0 {
		t.Fatalf("Stats().AdmittedReqs = 0, want > 0")
	}
}

// TestBrownoutOverCap: connections over the cap are not silently
// dropped anymore — they get ErrOverloaded replies for the brownout
// grace, then close; connections within the cap are unaffected.
func TestBrownoutOverCap(t *testing.T) {
	n := netsim.New()
	l, err := n.Listen("tm:1")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewStore(), simAcceptor{l: l}, nil, WithMaxConns(1))
	srv.Start()
	defer srv.Close()

	tree := taint.NewTree()
	first, err := DialSim(n, "tm:1", tree)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := first.Register(tree.NewSource("in-cap", "h:1")); err != nil {
		t.Fatalf("in-cap register: %v", err)
	}

	overTree := taint.NewTree()
	over, err := DialSim(n, "tm:1", overTree)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	_, err = over.Register(overTree.NewSource("over-cap", "h:1"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap register = %v, want ErrOverloaded", err)
	}

	// The in-cap connection still works.
	if _, err := first.Register(tree.NewSource("in-cap-2", "h:1")); err != nil {
		t.Fatalf("in-cap register after brownout: %v", err)
	}

	st := srv.Stats()
	if st.ShedConns != 1 {
		t.Fatalf("Stats().ShedConns = %d, want 1", st.ShedConns)
	}
	if st.ActiveConns != 1 {
		t.Fatalf("Stats().ActiveConns = %d, want 1", st.ActiveConns)
	}
}

// TestAdmissionConcurrentLoad drives many goroutines through a small
// gate and checks conservation: every request was admitted or shed,
// and admitted work all completed.
func TestAdmissionConcurrentLoad(t *testing.T) {
	a := newAdmission(2, 2)
	const callers = 32
	var done sync.WaitGroup
	var served, shed int64
	var mu sync.Mutex
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			if a.admit() {
				time.Sleep(time.Millisecond)
				a.release()
				mu.Lock()
				served++
				mu.Unlock()
				return
			}
			mu.Lock()
			shed++
			mu.Unlock()
		}()
	}
	done.Wait()
	if served+shed != callers {
		t.Fatalf("served %d + shed %d != %d", served, shed, callers)
	}
	if served == 0 {
		t.Fatal("nothing served")
	}
	if a.admitted.Load() != served {
		t.Fatalf("admitted counter %d != served %d", a.admitted.Load(), served)
	}
	if a.shed.Load() != shed {
		t.Fatalf("shed counter %d != shed %d", a.shed.Load(), shed)
	}
}
