package taintmap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBudgetExhausted is returned when the shared retry budget has no
// tokens for a reconnect, hedge, or retry. It wraps ErrDegraded: a
// caller that routes degraded-mode outcomes (journal locally, surface
// provisional ids) handles budget exhaustion the same way, while
// errors.Is(err, ErrBudgetExhausted) still distinguishes it.
var ErrBudgetExhausted = fmt.Errorf("%w: retry budget exhausted", ErrDegraded)

// Budget is a token bucket gating all traffic a client generates *in
// response to failure*: reconnect dials, hedged reads, retries. First
// tries are never charged — the budget bounds the amplification factor,
// so a brownout (every request slow, every caller retrying) cannot be
// turned into a retry storm that finishes the server off. A nil *Budget
// is a valid always-allow budget.
//
// The bucket holds at most burst tokens and refills at rate tokens per
// second. Time comes from the injected clock so tests drive refill
// without wall-clock sleeps.
type Budget struct {
	mu     sync.Mutex
	clk    clock
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time

	taken  atomic.Int64
	denied atomic.Int64
}

// NewBudget returns a budget refilling at rate tokens/second with
// capacity burst, starting full. Non-positive rate or burst returns
// nil — the always-allow budget.
func NewBudget(rate, burst float64) *Budget {
	return newBudgetClock(rate, burst, realClock{})
}

func newBudgetClock(rate, burst float64, clk clock) *Budget {
	if rate <= 0 || burst <= 0 {
		return nil
	}
	return &Budget{clk: clk, rate: rate, burst: burst, tokens: burst, last: clk.Now()}
}

// TryTake removes n tokens if available and reports whether it did. It
// never blocks: a denied caller must degrade (give up the hedge, skip
// the reconnect attempt), not wait. On a nil budget it always succeeds.
func (b *Budget) TryTake(n float64) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	now := b.clk.Now()
	if el := now.Sub(b.last); el > 0 {
		b.tokens += el.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	ok := b.tokens >= n
	if ok {
		b.tokens -= n
	}
	b.mu.Unlock()
	if ok {
		b.taken.Add(1)
	} else {
		b.denied.Add(1)
	}
	return ok
}

// Tokens returns the current token count (after refill), for gauges.
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clk.Now()
	if el := now.Sub(b.last); el > 0 {
		b.tokens += el.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	return b.tokens
}

// Denied returns how many takes the budget has refused.
func (b *Budget) Denied() int64 {
	if b == nil {
		return 0
	}
	return b.denied.Load()
}

// Taken returns how many takes the budget has granted.
func (b *Budget) Taken() int64 {
	if b == nil {
		return 0
	}
	return b.taken.Load()
}
