package taintmap

import (
	"errors"
	"testing"
	"time"
)

// stepClock is a manually-advanced clock for budget tests: no
// wall-clock sleeps, refill is driven by Advance.
type stepClock struct {
	now time.Time
}

func (c *stepClock) Now() time.Time { return c.now }
func (c *stepClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- c.now.Add(d)
	return ch
}
func (c *stepClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestBudgetBurstThenDeny(t *testing.T) {
	clk := &stepClock{now: time.Unix(100, 0)}
	b := newBudgetClock(10, 3, clk)
	for i := 0; i < 3; i++ {
		if !b.TryTake(1) {
			t.Fatalf("take %d refused inside burst", i)
		}
	}
	if b.TryTake(1) {
		t.Fatalf("take granted with empty bucket and no time passed")
	}
	if got := b.Denied(); got != 1 {
		t.Fatalf("Denied() = %d, want 1", got)
	}
	if got := b.Taken(); got != 3 {
		t.Fatalf("Taken() = %d, want 3", got)
	}
}

func TestBudgetRefill(t *testing.T) {
	clk := &stepClock{now: time.Unix(100, 0)}
	b := newBudgetClock(10, 5, clk) // 10 tokens/s, capacity 5
	for i := 0; i < 5; i++ {
		if !b.TryTake(1) {
			t.Fatalf("burst take %d refused", i)
		}
	}
	// 100ms refills exactly one token.
	clk.Advance(100 * time.Millisecond)
	if !b.TryTake(1) {
		t.Fatalf("take refused after one token refilled")
	}
	if b.TryTake(1) {
		t.Fatalf("second take granted from a single refilled token")
	}
	// A long idle period caps at burst, not rate*elapsed.
	clk.Advance(time.Hour)
	if got := b.Tokens(); got != 5 {
		t.Fatalf("Tokens() after long idle = %v, want capped at 5", got)
	}
	for i := 0; i < 5; i++ {
		if !b.TryTake(1) {
			t.Fatalf("post-idle take %d refused", i)
		}
	}
	if b.TryTake(1) {
		t.Fatalf("take granted beyond the burst cap")
	}
}

func TestBudgetNilAlwaysAllows(t *testing.T) {
	var b *Budget
	if !b.TryTake(1) {
		t.Fatalf("nil budget refused a take")
	}
	if b.Denied() != 0 || b.Taken() != 0 || b.Tokens() != 0 {
		t.Fatalf("nil budget reported non-zero counters")
	}
	if newBudgetClock(0, 10, &stepClock{}) != nil {
		t.Fatalf("zero rate did not disable the budget")
	}
	if newBudgetClock(10, -1, &stepClock{}) != nil {
		t.Fatalf("negative burst did not disable the budget")
	}
}

func TestBudgetExhaustedMatchesDegraded(t *testing.T) {
	if !errors.Is(ErrBudgetExhausted, ErrDegraded) {
		t.Fatalf("ErrBudgetExhausted must match ErrDegraded under errors.Is")
	}
}

func TestBudgetFractionalTake(t *testing.T) {
	clk := &stepClock{now: time.Unix(100, 0)}
	b := newBudgetClock(1, 1, clk)
	if !b.TryTake(1) {
		t.Fatalf("initial take refused")
	}
	clk.Advance(500 * time.Millisecond)
	if b.TryTake(1) {
		t.Fatalf("whole token granted after half a refill")
	}
	if !b.TryTake(0.5) {
		t.Fatalf("half token refused after half a refill")
	}
}
