package taintmap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

// The chaos harness: kill and restart the Taint Map server in the
// middle of a concurrent register/lookup workload and assert that no
// taint resolution is ever lost or wrong. The Store is shared across
// server incarnations (modelling the durable store a production
// deployment restarts on top of); the clients ride the outages on the
// resilience layer — journaling registers while degraded, draining on
// reconnect — so every taint submitted during the run must end the run
// with a real Global ID resolving to byte-identical content.

// chaosEnv bundles the pieces every chaos scenario needs.
type chaosEnv struct {
	t     *testing.T
	net   *netsim.Network
	store *Store // survives server restarts

	mu  sync.Mutex
	srv *Server
}

func newChaosEnv(t *testing.T) *chaosEnv {
	e := &chaosEnv{t: t, net: netsim.New(), store: NewStore()}
	e.restart()
	return e
}

// restart brings up a fresh server incarnation on the shared store.
func (e *chaosEnv) restart() {
	l, err := e.net.Listen("tm:chaos")
	if err != nil {
		e.t.Fatalf("chaos listen: %v", err)
	}
	srv := NewServer(e.store, simAcceptor{l: l}, nil,
		WithReadTimeout(200*time.Millisecond), WithMaxConns(64))
	srv.Start()
	e.mu.Lock()
	e.srv = srv
	e.mu.Unlock()
}

// kill force-closes the current incarnation, cutting every connection.
func (e *chaosEnv) kill() {
	e.mu.Lock()
	srv := e.srv
	e.mu.Unlock()
	srv.Close()
}

func (e *chaosEnv) chaosOpts() ResilientOptions {
	return ResilientOptions{
		CallTimeout:      200 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       10 * time.Millisecond,
		BreakerThreshold: 2,
		JournalLimit:     1 << 15,
	}
}

// published is one taint whose Global ID a worker obtained while
// healthy, available for cross-client lookup verification.
type published struct {
	id   uint32
	blob string
}

// tolerable reports whether err is an accepted workload error: the
// degraded client refusing an operation it cannot serve locally. A
// chaos run must produce no other error.
func tolerable(err error) bool {
	return errors.Is(err, ErrDegraded)
}

// TestChaosServerRestartUnderLoad kills and restarts the server twice
// under a 8-goroutine 90/10 register/lookup workload, then verifies
// every submitted taint resolves — from a completely fresh client — to
// exactly the bytes that were registered.
func TestChaosServerRestartUnderLoad(t *testing.T) {
	e := newChaosEnv(t)
	defer e.kill()

	tree := taint.NewTree()
	client := NewResilientClient(simDialer(e.net, "app:1", "tm:chaos"), tree, e.chaosOpts())
	defer client.Close()

	const goroutines = 8
	const perG = 420

	var ops atomic.Int64
	var pubMu sync.Mutex
	var pub []published
	submitted := make([][]taint.Taint, goroutines)

	// Workers gate on these mid-run so both kill/restart cycles overlap
	// the workload rather than racing past it.
	phase1 := make(chan struct{})
	phase2 := make(chan struct{})

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		submitted[g] = make([]taint.Taint, 0, perG)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i {
				case perG / 3:
					<-phase1
				case 2 * perG / 3:
					<-phase2
				}
				ops.Add(1)
				if i%10 == 9 {
					// Lookup leg: resolve a previously published id.
					pubMu.Lock()
					var p published
					if len(pub) > 0 {
						p = pub[(g*2654435761+i)%len(pub)]
					}
					pubMu.Unlock()
					if p.id == 0 {
						continue
					}
					got, err := client.Lookup(p.id)
					if err != nil {
						if tolerable(err) {
							continue
						}
						errs <- fmt.Errorf("worker %d lookup %d: %w", g, p.id, err)
						return
					}
					blob, err := taint.MarshalTaint(got)
					if err != nil || string(blob) != p.blob {
						errs <- fmt.Errorf("worker %d: lookup of id %d returned wrong taint (%v)", g, p.id, err)
						return
					}
					continue
				}
				// Register leg: a fresh distinct taint. Must never fail —
				// healthy it reaches the server, degraded it journals.
				tt := tree.NewSource(fmt.Sprintf("chaos-%d-%d", g, i), "app:1")
				id, err := client.Register(tt)
				if err != nil {
					errs <- fmt.Errorf("worker %d register %d: %w", g, i, err)
					return
				}
				if id == 0 {
					errs <- fmt.Errorf("worker %d register %d: id 0", g, i)
					return
				}
				submitted[g] = append(submitted[g], tt)
				if !IsProvisional(id) {
					blob, err := taint.MarshalTaint(tt)
					if err != nil {
						errs <- err
						return
					}
					pubMu.Lock()
					pub = append(pub, published{id: id, blob: string(blob)})
					pubMu.Unlock()
				}
			}
		}(g)
	}

	// The killer: two kill/restart cycles. Each round kills the server
	// while workers are (or are about to be) mid-workload, releases the
	// phase gate so the workload slams into the dead server, demands
	// forward progress (degraded-mode registers) during the outage, and
	// only then restarts. Killing before releasing the gate makes the
	// schedule immune to workers sprinting between the killer's polls.
	killRound := func(release chan struct{}, round string) {
		e.kill()
		close(release)
		down := ops.Load()
		deadline := time.Now().Add(30 * time.Second)
		for ops.Load() < down+100 {
			if !time.Now().Before(deadline) {
				t.Errorf("no workload progress while server down (%s)", round)
				break
			}
			time.Sleep(time.Millisecond)
		}
		e.restart()
		// Hold the next round until the client has actually reconnected
		// and drained; otherwise the rounds blur into one long outage
		// (degraded workers burn through ops much faster than the
		// backoff loop dials).
		deadline = time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if h := client.Health(); h.Connected && h.JournalLen == 0 {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Errorf("client never recovered after %s", round)
	}
	go func() {
		for ops.Load() < 200 {
			time.Sleep(time.Millisecond)
		}
		killRound(phase1, "first outage")
		// killRound returned with the client reconnected and drained, so
		// round two is a distinct outage however far the workers got in
		// the meantime (they may already be parked at the phase2 gate).
		killRound(phase2, "second outage")
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Settle: the journal must drain completely once the server is back.
	h := waitHealth(t, client, "post-chaos drain", func(h Health) bool {
		return h.Connected && !h.Degraded && h.JournalLen == 0
	})
	if h.Reconnects < 2 {
		t.Fatalf("survived the run with %d reconnects, want >= 2", h.Reconnects)
	}
	if h.Journaled == 0 {
		t.Fatal("no registration was ever journaled: the kills missed the workload")
	}
	if h.Drained != h.Journaled {
		t.Fatalf("journaled %d but drained %d", h.Journaled, h.Drained)
	}

	// Zero lost taints: every submitted taint re-registers to a real
	// Global ID, and a completely fresh client resolves that id to
	// byte-identical content. Content addressing also means one id per
	// distinct blob, ever.
	checkTree := taint.NewTree()
	check, err := DialSim(e.net, "tm:chaos", checkTree)
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	idOf := make(map[string]uint32)
	total := 0
	for g := range submitted {
		for _, tt := range submitted[g] {
			total++
			id, err := client.Register(tt)
			if err != nil {
				t.Fatalf("post-chaos register: %v", err)
			}
			if id == 0 || IsProvisional(id) {
				t.Fatalf("taint still unresolved after heal: id %d", id)
			}
			blob, err := taint.MarshalTaint(tt)
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := idOf[string(blob)]; ok && prev != id {
				t.Fatalf("blob resolved to ids %d and %d", prev, id)
			}
			idOf[string(blob)] = id
			got, err := check.Lookup(id)
			if err != nil {
				t.Fatalf("fresh-client lookup of id %d: %v", id, err)
			}
			gotBlob, err := taint.MarshalTaint(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotBlob) != string(blob) {
				t.Fatalf("id %d resolved to different bytes after the chaos run", id)
			}
		}
	}
	if total != goroutines*(perG-perG/10) {
		t.Fatalf("submitted %d taints, want %d", total, goroutines*(perG-perG/10))
	}
	if got := e.store.Stats().GlobalTaints; got != len(idOf) {
		t.Fatalf("store holds %d ids for %d distinct blobs", got, len(idOf))
	}
}

// TestChaosStreamResets runs the register workload under random
// connection resets (every write has a 1%% chance of killing its
// connection): the resilient client must absorb every reset and the
// final state must be exactly as consistent as a fault-free run.
func TestChaosStreamResets(t *testing.T) {
	e := newChaosEnv(t)
	defer e.kill()
	e.net.Reseed(7)

	tree := taint.NewTree()
	client := NewResilientClient(simDialer(e.net, "app:1", "tm:chaos"), tree, e.chaosOpts())
	defer client.Close()

	e.net.SetStreamResetRate(0.01)

	const goroutines = 4
	const perG = 150
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	submitted := make([][]taint.Taint, goroutines)
	for g := 0; g < goroutines; g++ {
		submitted[g] = make([]taint.Taint, 0, perG)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tt := tree.NewSource(fmt.Sprintf("reset-%d-%d", g, i), "app:1")
				if _, err := client.Register(tt); err != nil {
					errs <- fmt.Errorf("worker %d register %d: %w", g, i, err)
					return
				}
				submitted[g] = append(submitted[g], tt)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	e.net.SetStreamResetRate(0)
	waitHealth(t, client, "drain after resets stop", func(h Health) bool {
		return h.Connected && !h.Degraded && h.JournalLen == 0
	})

	checkTree := taint.NewTree()
	check, err := DialSim(e.net, "tm:chaos", checkTree)
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	for g := range submitted {
		for _, tt := range submitted[g] {
			id, err := client.Register(tt)
			if err != nil || id == 0 || IsProvisional(id) {
				t.Fatalf("post-run register = %d, %v", id, err)
			}
			got, err := check.Lookup(id)
			if err != nil || !taint.SameSet(got, tt) {
				t.Fatalf("lookup of id %d after reset storm: %v, %v", id, got, err)
			}
		}
	}
}
