package taintmap

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"dista/internal/core/taint"
)

// Client is a node's handle to the Taint Map. Register implements steps
// ①/② of Figure 9 (taint -> Global ID, cached on the taint node so each
// global taint is transferred once per node); Lookup implements steps
// ④/⑤ (Global ID -> taint, cached per client).
type Client interface {
	// Register returns the Global ID for t, contacting the Taint Map only
	// on first sight of the taint. The id is also recorded on t.
	Register(t taint.Taint) (uint32, error)
	// Lookup resolves a Global ID into a taint interned in this node's
	// tree, contacting the Taint Map only on first sight of the id.
	Lookup(id uint32) (taint.Taint, error)
	// Close releases the client's resources.
	Close() error
}

// cache holds the per-node id -> taint memo shared by both client kinds.
type cache struct {
	mu   sync.Mutex
	byID map[uint32]taint.Taint
}

func (c *cache) get(id uint32) (taint.Taint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.byID[id]
	return t, ok
}

func (c *cache) put(id uint32, t taint.Taint) {
	c.mu.Lock()
	if c.byID == nil {
		c.byID = make(map[uint32]taint.Taint)
	}
	c.byID[id] = t
	c.mu.Unlock()
}

// LocalClient talks to an in-process Store directly. It is used by
// single-process simulations and tests; behaviourally identical to
// RemoteClient minus the network hop.
type LocalClient struct {
	store *Store
	tree  *taint.Tree
	memo  cache
}

var _ Client = (*LocalClient)(nil)

// NewLocalClient returns a client resolving taints into tree.
func NewLocalClient(store *Store, tree *taint.Tree) *LocalClient {
	return &LocalClient{store: store, tree: tree}
}

// Register implements Client.
func (c *LocalClient) Register(t taint.Taint) (uint32, error) {
	if t.Empty() {
		return 0, nil
	}
	if id := t.GlobalID(); id != 0 {
		return id, nil
	}
	blob, err := taint.MarshalTaint(t)
	if err != nil {
		return 0, err
	}
	id := c.store.RegisterBlob(blob)
	t.SetGlobalID(id)
	c.memo.put(id, t)
	return id, nil
}

// Lookup implements Client.
func (c *LocalClient) Lookup(id uint32) (taint.Taint, error) {
	if id == 0 {
		return taint.Taint{}, nil
	}
	if t, ok := c.memo.get(id); ok {
		return t, nil
	}
	blob, err := c.store.LookupBlob(id)
	if err != nil {
		return taint.Taint{}, err
	}
	t, err := c.tree.UnmarshalTaint(blob)
	if err != nil {
		return taint.Taint{}, err
	}
	t.SetGlobalID(id)
	c.memo.put(id, t)
	return t, nil
}

// Close implements Client; the local client holds no resources.
func (c *LocalClient) Close() error { return nil }

// RemoteClient talks to a Taint Map server over a reliable stream (a
// netsim conn or a real TCP connection). Requests are serialized; the
// client is safe for concurrent use.
type RemoteClient struct {
	mu   sync.Mutex
	conn io.ReadWriteCloser
	tree *taint.Tree
	memo cache
}

var _ Client = (*RemoteClient)(nil)

// NewRemoteClient wraps an established connection to a Taint Map server.
func NewRemoteClient(conn io.ReadWriteCloser, tree *taint.Tree) *RemoteClient {
	return &RemoteClient{conn: conn, tree: tree}
}

// Register implements Client.
func (c *RemoteClient) Register(t taint.Taint) (uint32, error) {
	if t.Empty() {
		return 0, nil
	}
	if id := t.GlobalID(); id != 0 {
		return id, nil
	}
	blob, err := taint.MarshalTaint(t)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	reply, err := roundTrip(c.conn, opRegister, blob)
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if len(reply) != 4 {
		return 0, fmt.Errorf("taintmap: register reply of %d bytes", len(reply))
	}
	id := binary.BigEndian.Uint32(reply)
	t.SetGlobalID(id)
	c.memo.put(id, t)
	return id, nil
}

// Lookup implements Client.
func (c *RemoteClient) Lookup(id uint32) (taint.Taint, error) {
	if id == 0 {
		return taint.Taint{}, nil
	}
	if t, ok := c.memo.get(id); ok {
		return t, nil
	}
	c.mu.Lock()
	blob, err := roundTrip(c.conn, opLookup, binary.BigEndian.AppendUint32(nil, id))
	c.mu.Unlock()
	if err != nil {
		return taint.Taint{}, err
	}
	t, err := c.tree.UnmarshalTaint(blob)
	if err != nil {
		return taint.Taint{}, err
	}
	t.SetGlobalID(id)
	c.memo.put(id, t)
	return t, nil
}

// Stats fetches the server-side counters.
func (c *RemoteClient) Stats() (Stats, error) {
	c.mu.Lock()
	reply, err := roundTrip(c.conn, opStats, nil)
	c.mu.Unlock()
	if err != nil {
		return Stats{}, err
	}
	if len(reply) != 24 {
		return Stats{}, fmt.Errorf("taintmap: stats reply of %d bytes", len(reply))
	}
	return Stats{
		GlobalTaints:  int(binary.BigEndian.Uint64(reply[0:8])),
		Registrations: int64(binary.BigEndian.Uint64(reply[8:16])),
		Lookups:       int64(binary.BigEndian.Uint64(reply[16:24])),
	}, nil
}

// Close implements Client.
func (c *RemoteClient) Close() error { return c.conn.Close() }
