package taintmap

import (
	"fmt"
	"sync"

	"dista/internal/core/taint"
)

// Client is a node's handle to the Taint Map. Register implements steps
// ①/② of Figure 9 (taint -> Global ID, cached on the taint node so each
// global taint is transferred once per node); Lookup implements steps
// ④/⑤ (Global ID -> taint, cached per client).
type Client interface {
	// Register returns the Global ID for t, contacting the Taint Map only
	// on first sight of the taint. The id is also recorded on t.
	Register(t taint.Taint) (uint32, error)
	// Lookup resolves a Global ID into a taint interned in this node's
	// tree, contacting the Taint Map only on first sight of the id.
	Lookup(id uint32) (taint.Taint, error)
	// RegisterBatch registers every taint, returning the parallel id
	// slice. Duplicates and already-registered taints cost nothing
	// extra; a remote client resolves all misses in one round trip.
	RegisterBatch(ts []taint.Taint) ([]uint32, error)
	// LookupBatch resolves every id, returning the parallel taint
	// slice; all cache misses go to the Taint Map in one round trip.
	LookupBatch(ids []uint32) ([]taint.Taint, error)
	// Close releases the client's resources.
	Close() error
}

// collectRegister splits ts into resolved ids and the distinct
// unresolved taints (with the positions waiting on each), the shared
// front half of every RegisterBatch implementation.
func collectRegister(ts []taint.Taint) (ids []uint32, pending []taint.Taint, posOf map[taint.Taint][]int) {
	ids = make([]uint32, len(ts))
	for i, t := range ts {
		if t.Empty() {
			continue
		}
		if id := t.GlobalID(); id != 0 {
			ids[i] = id
			continue
		}
		if posOf == nil {
			posOf = make(map[taint.Taint][]int)
		}
		if _, seen := posOf[t]; !seen {
			pending = append(pending, t)
		}
		posOf[t] = append(posOf[t], i)
	}
	return ids, pending, posOf
}

// marshalAll serializes every taint in ts.
func marshalAll(ts []taint.Taint) ([][]byte, error) {
	blobs := make([][]byte, len(ts))
	for i, t := range ts {
		blob, err := taint.MarshalTaint(t)
		if err != nil {
			return nil, err
		}
		blobs[i] = blob
	}
	return blobs, nil
}

// adoptFresh records freshly registered ids: on the pending taints, in
// the memo, and at every position of ids waiting on each taint — the
// shared back half of every RegisterBatch implementation.
func adoptFresh(memo *cache, ids, fresh []uint32, pending []taint.Taint, posOf map[taint.Taint][]int) {
	for i, t := range pending {
		t.SetGlobalID(fresh[i])
		memo.put(fresh[i], t)
		for _, pos := range posOf[t] {
			ids[pos] = fresh[i]
		}
	}
}

// cache holds the per-node id -> taint memo shared by all client kinds.
// Reads (the overwhelmingly common case once a node is warm) take only
// the read lock, so concurrent goroutines resolving cached ids never
// serialize.
type cache struct {
	mu   sync.RWMutex
	byID map[uint32]taint.Taint
}

func (c *cache) get(id uint32) (taint.Taint, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.byID[id]
	return t, ok
}

func (c *cache) put(id uint32, t taint.Taint) {
	c.mu.Lock()
	if c.byID == nil {
		c.byID = make(map[uint32]taint.Taint)
	}
	c.byID[id] = t
	c.mu.Unlock()
}

// splitBatch resolves what it can from the memo under one read-lock
// acquisition: ts holds the resolved taints (and empties for id 0),
// missing lists the distinct unresolved ids in first-seen order. A
// two-slot last-seen shortcut keeps fragmented streams that alternate
// between a couple of ids (the adversarial per-byte-label case) from
// paying a map access per run.
func (c *cache) splitBatch(ids []uint32) (ts []taint.Taint, missing []uint32) {
	ts = make([]taint.Taint, len(ids))
	var seen map[uint32]bool
	var id0, id1 uint32
	var t0, t1 taint.Taint
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, id := range ids {
		if id == 0 {
			continue
		}
		if id == id0 {
			ts[i] = t0
			continue
		}
		if id == id1 {
			ts[i] = t1
			continue
		}
		if t, ok := c.byID[id]; ok {
			ts[i] = t
			id1, t1 = id0, t0
			id0, t0 = id, t
			continue
		}
		if seen == nil {
			seen = make(map[uint32]bool)
		}
		if !seen[id] {
			seen[id] = true
			missing = append(missing, id)
		}
	}
	return ts, missing
}

// LocalClient talks to an in-process Store directly. It is used by
// single-process simulations and tests; behaviourally identical to
// RemoteClient minus the network hop.
type LocalClient struct {
	store *Store
	tree  *taint.Tree
	memo  cache
}

var _ Client = (*LocalClient)(nil)

// NewLocalClient returns a client resolving taints into tree.
func NewLocalClient(store *Store, tree *taint.Tree) *LocalClient {
	return &LocalClient{store: store, tree: tree}
}

// Register implements Client.
func (c *LocalClient) Register(t taint.Taint) (uint32, error) {
	if t.Empty() {
		return 0, nil
	}
	if id := t.GlobalID(); id != 0 {
		return id, nil
	}
	blob, err := taint.MarshalTaint(t)
	if err != nil {
		return 0, err
	}
	id := c.store.RegisterBlob(blob)
	t.SetGlobalID(id)
	c.memo.put(id, t)
	return id, nil
}

// Lookup implements Client.
func (c *LocalClient) Lookup(id uint32) (taint.Taint, error) {
	if id == 0 {
		return taint.Taint{}, nil
	}
	if t, ok := c.memo.get(id); ok {
		return t, nil
	}
	blob, err := c.store.LookupBlob(id)
	if err != nil {
		return taint.Taint{}, err
	}
	t, err := c.tree.UnmarshalTaint(blob)
	if err != nil {
		return taint.Taint{}, err
	}
	t.SetGlobalID(id)
	c.memo.put(id, t)
	return t, nil
}

// RegisterBatch implements Client: all unregistered taints go straight
// to the store (each blob locking only its shard).
func (c *LocalClient) RegisterBatch(ts []taint.Taint) ([]uint32, error) {
	ids, pending, posOf := collectRegister(ts)
	if len(pending) == 0 {
		return ids, nil
	}
	blobs, err := marshalAll(pending)
	if err != nil {
		return nil, err
	}
	adoptFresh(&c.memo, ids, c.store.RegisterBlobs(blobs), pending, posOf)
	return ids, nil
}

// LookupBatch implements Client: all memo misses go to the store's
// lock-free id table.
func (c *LocalClient) LookupBatch(ids []uint32) ([]taint.Taint, error) {
	ts, missing := c.memo.splitBatch(ids)
	if len(missing) == 0 {
		return ts, nil
	}
	blobs, err := c.store.LookupBlobs(missing)
	if err != nil {
		return nil, err
	}
	if err := adoptBlobs(c.tree, &c.memo, ts, ids, missing, blobs); err != nil {
		return nil, err
	}
	return ts, nil
}

// adoptBlobs unmarshals fetched blobs into the tree and fills every
// position of ids waiting on each fetched id.
func adoptBlobs(tree *taint.Tree, memo *cache, ts []taint.Taint, ids, missing []uint32, blobs [][]byte) error {
	if len(blobs) != len(missing) {
		return fmt.Errorf("taintmap: %d blobs for %d ids", len(blobs), len(missing))
	}
	fetched := make(map[uint32]taint.Taint, len(missing))
	for i, id := range missing {
		t, err := tree.UnmarshalTaint(blobs[i])
		if err != nil {
			return err
		}
		t.SetGlobalID(id)
		memo.put(id, t)
		fetched[id] = t
	}
	for i, id := range ids {
		if t, ok := fetched[id]; ok {
			ts[i] = t
		}
	}
	return nil
}

// Close implements Client; the local client holds no resources.
func (c *LocalClient) Close() error { return nil }
