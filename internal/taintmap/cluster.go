package taintmap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// defaultPeerTimeout bounds how long a replication push waits for a
// peer's ack before declaring the link dead. Before this existed a
// stalled-but-connected peer (the classic gray failure) wedged the
// owner's registration path forever.
const defaultPeerTimeout = 2 * time.Second

// peerCooldown is how long a failed peer link refuses calls before
// re-trying the transport. Within the window a replication push hints
// instantly instead of paying the timeout again per registration.
const peerCooldown = 250 * time.Millisecond

// errPeerDown is the instant failure a cooling-down peer link returns.
var errPeerDown = errors.New("taintmap: peer link cooling down after failure")

// ClusterNode is the server-side half of the partitioned Taint Map: the
// per-server state that turns N independent taintmapd processes into
// one logical map. It owns the membership ring, the peer links used for
// synchronous replication, and the join gossip. A Server constructed
// with WithClusterNode consults it on every cluster op and pushes every
// fresh registration through it before acking.
//
// Replication is owner-push: the partition owner that minted an id
// sends the (id, blob) entry to its ring successors and waits for their
// acks before the registration reply leaves the server. A successor
// that cannot be reached does not fail the registration — the owner is
// the durable copy and read-repair re-converges the replica later
// (hinted handoff, counted in Hinted). Replication handlers only ever
// adopt — they never mint ids or push further — so peer calls cannot
// cycle and the protocol cannot deadlock however the ring is wired.
type ClusterNode struct {
	self Member
	dial func(addr string) (io.ReadWriteCloser, error)

	ring atomic.Pointer[Ring]

	mu    sync.Mutex // ring changes and peer-map writes
	peers map[uint32]*peerLink

	// peerTimeout is the per-call ack deadline on peer links,
	// nanoseconds; 0 disables the deadline (not recommended).
	peerTimeout atomic.Int64

	hinted  atomic.Int64 // replication pushes skipped on a dead peer
	pushed  atomic.Int64 // entries successfully replicated to successors
	repairs atomic.Int64 // entries adopted through read-repair ('w')
}

// NewClusterNode makes this server the given member of a cluster whose
// initial membership is members (which must include self). dial opens a
// connection to a peer's address.
func NewClusterNode(self Member, members []Member, rf int, dial func(addr string) (io.ReadWriteCloser, error)) (*ClusterNode, error) {
	found := false
	for _, m := range members {
		if m.Part == self.Part {
			found = true
			break
		}
	}
	if !found {
		members = append(append([]Member(nil), members...), self)
	}
	r, err := NewRing(1, rf, members)
	if err != nil {
		return nil, err
	}
	n := &ClusterNode{self: self, dial: dial, peers: make(map[uint32]*peerLink)}
	n.peerTimeout.Store(int64(defaultPeerTimeout))
	n.ring.Store(r)
	return n, nil
}

// SetPeerTimeout adjusts the ack deadline on peer calls (default 2s).
// Non-positive d disables the deadline.
func (n *ClusterNode) SetPeerTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n.peerTimeout.Store(int64(d))
}

// Self returns this node's membership entry.
func (n *ClusterNode) Self() Member { return n.self }

// Ring returns the current membership snapshot.
func (n *ClusterNode) Ring() *Ring { return n.ring.Load() }

// Hinted reports how many replication pushes were skipped because a
// successor was unreachable (the entries live on the owner and heal by
// read-repair).
func (n *ClusterNode) Hinted() int64 { return n.hinted.Load() }

// Pushed reports how many entries were synchronously replicated.
func (n *ClusterNode) Pushed() int64 { return n.pushed.Load() }

// Repaired reports how many entries this node adopted via read-repair.
func (n *ClusterNode) Repaired() int64 { return n.repairs.Load() }

// Join adds (or re-addresses) a member and gossips the join to every
// other peer. It is idempotent: a join for a member already in the ring
// at the same address is a no-op that does not re-gossip, which is what
// lets peers forward joins to each other without looping.
func (n *ClusterNode) Join(m Member) (*Ring, error) {
	n.mu.Lock()
	r := n.ring.Load()
	if old, ok := r.Member(m.Part); ok && old.Addr == m.Addr {
		n.mu.Unlock()
		return r, nil
	}
	nr, err := r.WithMember(m)
	if err != nil {
		n.mu.Unlock()
		return nil, err
	}
	n.ring.Store(nr)
	n.mu.Unlock()

	payload := appendMember(nil, m)
	for _, peer := range nr.Members() {
		if peer.Part == n.self.Part || peer.Part == m.Part {
			continue
		}
		if err := n.callPeer(peer, opJoinTag, payload); err != nil {
			// The peer will learn the ring on its next join exchange or
			// from a client; membership gossip is best-effort.
			continue
		}
	}
	return nr, nil
}

// JoinVia introduces this node to an existing cluster through one seed
// member: it sends its own membership entry and installs the ring the
// seed answers with. Used by `taintmapd -join=<addr>`.
func (n *ClusterNode) JoinVia(seedAddr string) (*Ring, error) {
	link := &peerLink{addr: seedAddr, dial: n.dial}
	defer link.close()
	reply, err := link.call(opJoinTag, appendMember(nil, n.self), time.Duration(n.peerTimeout.Load()))
	if err != nil {
		return nil, fmt.Errorf("taintmap: join via %s: %w", seedAddr, err)
	}
	r, err := parseRing(reply)
	if err != nil {
		return nil, fmt.Errorf("taintmap: join via %s: %w", seedAddr, err)
	}
	n.mu.Lock()
	n.ring.Store(r)
	n.mu.Unlock()
	return r, nil
}

// replicate pushes an encoded entry list to this partition's ring
// successors and waits for their acks — the synchronous half of the
// replication protocol, called by the request handler between minting
// and acking. Unreachable successors are skipped (hinted handoff).
func (n *ClusterNode) replicate(entries []byte) {
	r := n.ring.Load()
	for _, part := range r.Successors(n.self.Part) {
		peer, ok := r.Member(part)
		if !ok {
			continue
		}
		if err := n.callPeer(peer, opReplicateTag, entries); err != nil {
			n.hinted.Add(1)
			continue
		}
		n.pushed.Add(1)
	}
}

// callPeer issues one cluster op on the cached link to peer, dropping
// the link on failure so the next call re-dials.
func (n *ClusterNode) callPeer(peer Member, op byte, payload []byte) error {
	n.mu.Lock()
	link := n.peers[peer.Part]
	if link == nil || link.addr != peer.Addr {
		if link != nil {
			link.close()
		}
		link = &peerLink{addr: peer.Addr, dial: n.dial}
		n.peers[peer.Part] = link
	}
	n.mu.Unlock()
	_, err := link.call(op, payload, time.Duration(n.peerTimeout.Load()))
	return err
}

// Close drops every peer link.
func (n *ClusterNode) Close() {
	n.mu.Lock()
	for _, link := range n.peers {
		link.close()
	}
	clear(n.peers)
	n.mu.Unlock()
}

// peerLink is one node-to-node connection: stop-and-wait over the
// tagged frame format (tag 0 — the link is mutex-serialized, so tags
// carry no information). Kept deliberately simpler than the client mux:
// replication already batches at the request level, and a peer push is
// on the registration latency path only for fresh ids.
type peerLink struct {
	addr string
	dial func(addr string) (io.ReadWriteCloser, error)

	mu        sync.Mutex
	conn      io.ReadWriteCloser
	br        *bufio.Reader
	bw        *bufio.Writer
	downUntil time.Time // cooldown after a transport failure
}

// call sends one tagged request and reads its reply, dialing on first
// use and tearing the connection down on any failure. The ack read is
// bounded by timeout (when the transport supports read deadlines), so a
// stalled peer costs one timeout, not a wedged owner; for peerCooldown
// after any transport failure further calls fail instantly, turning
// per-registration replication pushes into immediate hinted handoff.
func (l *peerLink) call(op byte, payload []byte, timeout time.Duration) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.downUntil.IsZero() {
		if time.Now().Before(l.downUntil) {
			return nil, errPeerDown
		}
		l.downUntil = time.Time{}
	}
	fail := func(err error) ([]byte, error) {
		if l.conn != nil {
			l.conn.Close()
			l.conn = nil
		}
		l.downUntil = time.Now().Add(peerCooldown)
		return nil, err
	}
	if l.conn == nil {
		conn, err := l.dial(l.addr)
		if err != nil {
			return fail(err)
		}
		l.conn = conn
		l.br = bufio.NewReaderSize(conn, 32<<10)
		l.bw = bufio.NewWriterSize(conn, 32<<10)
	}
	if err := writeTaggedFrame(l.bw, op, 0, payload); err != nil {
		return fail(err)
	}
	if err := l.bw.Flush(); err != nil {
		return fail(err)
	}
	rd, _ := l.conn.(readDeadliner)
	if rd != nil && timeout > 0 {
		rd.SetReadDeadline(time.Now().Add(timeout))
	}
	var hdr [9]byte
	if _, err := io.ReadFull(l.br, hdr[:]); err != nil {
		return fail(err)
	}
	status := hdr[0]
	nlen := binary.BigEndian.Uint32(hdr[5:9])
	if nlen > maxReplyFrame {
		return fail(fmt.Errorf("%w: peer reply of %d bytes", errProtocol, nlen))
	}
	reply := make([]byte, nlen)
	if _, err := io.ReadFull(l.br, reply); err != nil {
		return fail(err)
	}
	if rd != nil && timeout > 0 {
		rd.SetReadDeadline(time.Time{})
	}
	if status != statusTaggedOK {
		// The request was answered; the link itself is healthy.
		return nil, serverErr(reply)
	}
	return reply, nil
}

func (l *peerLink) close() {
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.mu.Unlock()
}
