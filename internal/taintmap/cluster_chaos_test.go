package taintmap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dista/internal/core/taint"
)

// Cluster chaos: run the 8-goroutine mixed workload against a 3-member
// RF-2 cluster while the netsim fault plane cuts whole partitions away
// — each member in turn — and assert the logical map never loses or
// corrupts a resolution. During an outage the cut member's traffic
// journals client-side (provisional ids) and its owner pushes become
// hinted handoffs; after the final heal every submitted taint must
// resolve, from a completely fresh client, to byte-identical content.

// tolerableClusterLookup reports whether a mid-outage lookup error is
// accepted: the member being down (ErrDegraded / a timed-out call) or a
// transient replication gap — an id whose only surviving copy is behind
// the active partition (read-repair closes the gap once the cut heals).
// Wrong bytes are never tolerated, and the post-run verification — the
// actual zero-lost-resolution check — tolerates nothing at all.
func tolerableClusterLookup(err error) bool {
	return errors.Is(err, ErrDegraded) ||
		errors.Is(err, ErrCallTimeout) ||
		errors.Is(err, ErrUnknownGlobalID)
}

func TestChaosClusterPartitionKill(t *testing.T) {
	e := newClusterEnv(t, 3, 2)
	tree := taint.NewTree()
	c, err := DialSimCluster(e.net, "app:1", e.ring, tree, ClusterOptions{
		Resilient: ResilientOptions{
			CallTimeout:      200 * time.Millisecond,
			BackoffBase:      time.Millisecond,
			BackoffMax:       10 * time.Millisecond,
			BreakerThreshold: 2,
			JournalLimit:     1 << 15,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const goroutines = 8
	const perG = 360

	var ops atomic.Int64
	var pubMu sync.Mutex
	var pub []published
	submitted := make([][]taint.Taint, goroutines)

	// One gate per outage round so every cut overlaps live load.
	gates := [3]chan struct{}{make(chan struct{}), make(chan struct{}), make(chan struct{})}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		submitted[g] = make([]taint.Taint, 0, perG)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i {
				case perG / 4:
					<-gates[0]
				case 2 * perG / 4:
					<-gates[1]
				case 3 * perG / 4:
					<-gates[2]
				}
				ops.Add(1)
				if i%10 == 9 {
					pubMu.Lock()
					var p published
					if len(pub) > 0 {
						p = pub[(g*2654435761+i)%len(pub)]
					}
					pubMu.Unlock()
					if p.id == 0 {
						continue
					}
					got, err := c.Lookup(p.id)
					if err != nil {
						if tolerableClusterLookup(err) {
							continue
						}
						errs <- fmt.Errorf("worker %d lookup %d: %w", g, p.id, err)
						return
					}
					blob, err := taint.MarshalTaint(got)
					if err != nil || string(blob) != p.blob {
						errs <- fmt.Errorf("worker %d: id %d resolved to wrong taint (%v)", g, p.id, err)
						return
					}
					continue
				}
				// Register leg: must never fail — the owner reachable it
				// registers, the owner cut away it journals provisionally.
				tt := tree.NewSource(fmt.Sprintf("ckill-%d-%d", g, i), "app:1")
				id, err := c.Register(tt)
				if err != nil {
					errs <- fmt.Errorf("worker %d register %d: %w", g, i, err)
					return
				}
				if id == 0 {
					errs <- fmt.Errorf("worker %d register %d: id 0", g, i)
					return
				}
				submitted[g] = append(submitted[g], tt)
				if !IsProvisional(id) {
					blob, err := taint.MarshalTaint(tt)
					if err != nil {
						errs <- err
						return
					}
					pubMu.Lock()
					pub = append(pub, published{id: id, blob: string(blob)})
					pubMu.Unlock()
				}
			}
		}(g)
	}

	// The killer: cut each member's host off the network in turn — from
	// the clients AND its peers, so replication to it turns into hinted
	// handoff — demand forward progress during the cut, heal, and wait
	// for that member's client handle to reconnect and drain before the
	// next round.
	killRound := func(round int) {
		host := fmt.Sprintf("tm%d", round)
		e.net.Partition(host, "*")
		close(gates[round])
		down := ops.Load()
		deadline := time.Now().Add(30 * time.Second)
		for ops.Load() < down+100 {
			if !time.Now().Before(deadline) {
				t.Errorf("no workload progress with %s cut off", host)
				break
			}
			time.Sleep(time.Millisecond)
		}
		e.net.Heal(host, "*")
		deadline = time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			h := c.Healths()[uint32(round)]
			if h.Connected && !h.Degraded && h.JournalLen == 0 {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Errorf("member %d never recovered after its partition healed", round)
	}
	go func() {
		for ops.Load() < 200 {
			time.Sleep(time.Millisecond)
		}
		for round := 0; round < 3; round++ {
			killRound(round)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Settle: every member connected, nothing left journaled anywhere.
	deadline := time.Now().Add(30 * time.Second)
	for {
		all := true
		for part, h := range c.Healths() {
			if !h.Connected || h.Degraded || h.JournalLen != 0 {
				all = false
				if !time.Now().Before(deadline) {
					t.Fatalf("member %d still unhealthy after the run: %+v", part, h)
				}
			}
		}
		if all {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// At least one round actually hit the replication path: some push
	// was hinted while its target was cut off.
	var hinted int64
	for _, node := range e.nodes {
		hinted += node.Hinted()
	}
	if hinted == 0 {
		t.Fatal("no hinted handoff all run: the partitions missed replication traffic")
	}

	// Zero lost, zero wrong: every submitted taint re-registers to a
	// real id resolving byte-identically from a fresh client, one id per
	// blob, and the partitions together hold exactly the distinct blobs.
	checkTree := taint.NewTree()
	check, err := DialSimCluster(e.net, "verify:1", e.ring, checkTree, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	idOf := make(map[string]uint32)
	total := 0
	for g := range submitted {
		for _, tt := range submitted[g] {
			total++
			id, err := c.Register(tt)
			if err != nil {
				t.Fatalf("post-chaos register: %v", err)
			}
			if id == 0 || IsProvisional(id) {
				t.Fatalf("taint still unresolved after heal: id %d", id)
			}
			blob, err := taint.MarshalTaint(tt)
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := idOf[string(blob)]; ok && prev != id {
				t.Fatalf("blob resolved to ids %d and %d", prev, id)
			}
			idOf[string(blob)] = id
			got, err := check.Lookup(id)
			if err != nil {
				t.Fatalf("fresh-client lookup of id %d: %v", id, err)
			}
			gotBlob, err := taint.MarshalTaint(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotBlob) != string(blob) {
				t.Fatalf("id %d resolved to different bytes after the chaos run", id)
			}
		}
	}
	if total != goroutines*(perG-perG/10) {
		t.Fatalf("submitted %d taints, want %d", total, goroutines*(perG-perG/10))
	}
	minted := 0
	for _, s := range e.stores {
		minted += s.Stats().GlobalTaints
	}
	if minted != len(idOf) {
		t.Fatalf("partitions minted %d ids for %d distinct blobs", minted, len(idOf))
	}
}
