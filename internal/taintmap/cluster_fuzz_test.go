package taintmap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzClusterServeConn is FuzzServeConn for a clustered server: the same
// arbitrary byte streams, served by a connHost carrying a ClusterNode
// whose peer dials always fail (so replication and join gossip take the
// hinted/best-effort paths without a network). The cluster ops — ring
// snapshot, join, replicate, repair — must never panic, and everything
// written back must be complete well-formed response frames.
func FuzzClusterServeConn(f *testing.F) {
	entries := appendEntries(nil, []uint32{partitionBase(1) | 1, partitionBase(1) | 2},
		[][]byte{[]byte("blob-a"), []byte("blob-b")})
	ownEntries := appendEntries(nil, []uint32{partitionBase(0) | 3}, [][]byte{[]byte("blob-own")})

	// The whole cluster vocabulary, tagged and untagged.
	f.Add(taggedReq(opRingTag, 1, nil))
	f.Add(untaggedReq(opRing, nil))
	f.Add(taggedReq(opJoinTag, 2, appendMember(nil, Member{Part: 2, Addr: "c:1"})))
	f.Add(untaggedReq(opJoin, appendMember(nil, Member{Part: 3, Addr: "d:1"})))
	f.Add(taggedReq(opReplicateTag, 3, entries))
	f.Add(untaggedReq(opReplicate, ownEntries))
	f.Add(taggedReq(opRepairTag, 4, entries))
	f.Add(untaggedReq(opRepair, entries))
	// Interleaved with ordinary traffic: a register that triggers the
	// synchronous replication path before its reply.
	f.Add(append(untaggedReq(opRegister, []byte("fresh")), taggedReq(opRingTag, 5, nil)...))
	// Malformed cluster payloads: truncated member, trailing bytes,
	// absurd entry counts, provisional/zero-seq ids in entries.
	f.Add(taggedReq(opJoinTag, 6, []byte{2, 0}))
	f.Add(taggedReq(opJoinTag, 7, append(appendMember(nil, Member{Part: 1, Addr: "b:2"}), 0xFF)))
	f.Add(taggedReq(opReplicateTag, 8, []byte{0xFF, 0xFF, 0xFF, 0xFF}))
	f.Add(taggedReq(opReplicateTag, 9, appendEntries(nil, []uint32{provisionalBit | 5}, [][]byte{[]byte("x")})))
	f.Add(taggedReq(opRepairTag, 10, appendEntries(nil, []uint32{partitionBase(2)}, [][]byte{[]byte("x")})))
	f.Add(taggedReq(opRepairTag, 11, append(entries, 0xAA)))

	f.Fuzz(func(t *testing.T, data []byte) {
		store := NewStore()
		node, err := NewClusterNode(Member{Part: 0, Addr: "a:1"},
			[]Member{{Part: 0, Addr: "a:1"}, {Part: 1, Addr: "b:1"}}, 2,
			func(addr string) (io.ReadWriteCloser, error) {
				return nil, errors.New("fuzz: no network")
			})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		conn := &fuzzConn{r: bytes.NewReader(data)}
		_ = serveConn(connHost{store: store, node: node}, conn, 0)

		out := conn.w.Bytes()
		for len(out) > 0 {
			status := out[0]
			var hdrLen int
			switch status {
			case statusOK, statusErr:
				hdrLen = 5
			case statusTaggedOK, statusTaggedErr:
				hdrLen = 9
			default:
				t.Fatalf("response starts with status %d", status)
			}
			if len(out) < hdrLen {
				t.Fatalf("truncated response header: % x", out)
			}
			n := binary.BigEndian.Uint32(out[hdrLen-4 : hdrLen])
			if n > maxReplyFrame {
				t.Fatalf("response frame of %d bytes", n)
			}
			if len(out) < hdrLen+int(n) {
				t.Fatalf("truncated response payload: want %d, have %d", n, len(out)-hdrLen)
			}
			out = out[hdrLen+int(n):]
		}
	})
}

// FuzzParseRing throws random bytes at the ring wire parser: it must
// never panic, and any ring it accepts must survive an encode/parse
// round trip unchanged (after NewRing's normalization — member sort and
// rf clamp — which the encoder always emits).
func FuzzParseRing(f *testing.F) {
	r, _ := NewRing(3, 2, []Member{{Part: 0, Addr: "a:1"}, {Part: 2, Addr: "c:1"}})
	f.Add(appendRing(nil, r))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 2, 0})                     // zero members
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 2, 1, 0, 0, 1, 'x', 0xFF}) // trailing byte
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 2, 1, 0, 0xFF, 0xFF})      // absurd addr length
	f.Add(appendMember(nil, Member{Part: 1, Addr: "b:1"}))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := parseRing(data)
		if err != nil {
			return
		}
		re := appendRing(nil, r)
		r2, err := parseRing(re)
		if err != nil {
			t.Fatalf("re-parse of encoded ring failed: %v", err)
		}
		if r2.Epoch != r.Epoch || r2.RF != r.RF || len(r2.Members()) != len(r.Members()) {
			t.Fatalf("ring changed across roundtrip: %+v vs %+v", r, r2)
		}
		for i, m := range r2.Members() {
			if m != r.Members()[i] {
				t.Fatalf("member %d changed across roundtrip", i)
			}
		}
		// The member parser shares the hardening contract.
		if m, err := parseMember(data); err == nil {
			if m2, err := parseMember(appendMember(nil, m)); err != nil || m2 != m {
				t.Fatalf("member roundtrip: %+v, %v", m2, err)
			}
		}
	})
}
