package taintmap

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

func TestIDSpaceLayout(t *testing.T) {
	// The three id fields must tile the 32 bits without overlap — the
	// invariant the distavet idbits analyzer also proves statically.
	if provisionalBit&partitionMask != 0 {
		t.Fatalf("provisional bit overlaps partition field")
	}
	if partitionMask&seqMask != 0 {
		t.Fatalf("partition field overlaps sequence field")
	}
	if provisionalBit|partitionMask|seqMask != ^uint32(0) {
		t.Fatalf("id fields do not cover all 32 bits")
	}
	for _, part := range []uint32{0, 1, 7, MaxPartitions - 1} {
		for _, seq := range []uint32{1, 42, seqMask} {
			id := partitionBase(part) | seq
			if PartitionOf(id) != part || SeqOf(id) != seq {
				t.Fatalf("decompose(%d|%d) = (%d,%d)", part, seq, PartitionOf(id), SeqOf(id))
			}
			// Provisional ids keep both fields readable.
			prov := provisionalBit | id
			if !IsProvisional(prov) || PartitionOf(prov) != part || SeqOf(prov) != seq {
				t.Fatalf("provisional compose broke fields for part %d seq %d", part, seq)
			}
			if IsProvisional(id) {
				t.Fatalf("real id %d reads as provisional", id)
			}
		}
	}
	if _, err := NewPartitionStore(MaxPartitions); err == nil {
		t.Fatal("partition out of range accepted")
	}
}

func TestPartitionStoreMintAndAdopt(t *testing.T) {
	s, err := NewPartitionStore(3)
	if err != nil {
		t.Fatal(err)
	}
	id := s.RegisterBlob([]byte("blob-a"))
	if PartitionOf(id) != 3 || SeqOf(id) != 1 {
		t.Fatalf("partition store minted id %x", id)
	}
	if again := s.RegisterBlob([]byte("blob-a")); again != id {
		t.Fatalf("dedup broke under partition base: %d != %d", again, id)
	}
	if blob, err := s.LookupBlob(id); err != nil || string(blob) != "blob-a" {
		t.Fatalf("own-partition lookup: %q, %v", blob, err)
	}

	// Foreign-partition adoption serves lookups out of a replica table.
	foreign := partitionBase(5) | 9
	if err := s.AdoptBlob(foreign, []byte("blob-f")); err != nil {
		t.Fatal(err)
	}
	if blob, err := s.LookupBlob(foreign); err != nil || string(blob) != "blob-f" {
		t.Fatalf("replica lookup: %q, %v", blob, err)
	}
	if got := s.Replicated(5); got != 9 {
		t.Fatalf("Replicated(5) = %d, want 9 (the highest adopted seq)", got)
	}
	// Adoption is idempotent and rejects ids that must never replicate.
	if err := s.AdoptBlob(foreign, []byte("blob-f")); err != nil {
		t.Fatalf("re-adopt: %v", err)
	}
	if err := s.AdoptBlob(provisionalBit|foreign, []byte("x")); err == nil {
		t.Fatal("adopted a provisional id")
	}
	if err := s.AdoptBlob(partitionBase(5), []byte("x")); err == nil {
		t.Fatal("adopted a zero-sequence id")
	}

	// Own-partition adoption (a healed owner) raises the mint cursor so
	// the next registration cannot collide with the adopted seq.
	if err := s.AdoptBlob(partitionBase(3)|40, []byte("blob-heal")); err != nil {
		t.Fatal(err)
	}
	next := s.RegisterBlob([]byte("blob-b"))
	if SeqOf(next) <= 40 {
		t.Fatalf("mint after adopt reused seq %d", SeqOf(next))
	}
	if again := s.RegisterBlob([]byte("blob-heal")); again != partitionBase(3)|40 {
		t.Fatalf("healed blob re-registered as %x", again)
	}
}

func TestRingOwnershipAndReplicas(t *testing.T) {
	members := []Member{{Part: 0, Addr: "a:1"}, {Part: 1, Addr: "b:1"}, {Part: 2, Addr: "c:1"}, {Part: 3, Addr: "d:1"}}
	r, err := NewRing(1, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	// Ownership is deterministic and roughly balanced over blob hashes.
	counts := make(map[uint32]int)
	for i := 0; i < 4096; i++ {
		blob := []byte(fmt.Sprintf("blob-%d", i))
		p := r.OwnerOfBlob(blob)
		if p != r.OwnerOfBlob(blob) {
			t.Fatal("ownership not deterministic")
		}
		counts[p]++
	}
	for _, m := range members {
		if counts[m.Part] < 4096/4/3 {
			t.Fatalf("partition %d owns only %d of 4096 blobs — vnode spread broken", m.Part, counts[m.Part])
		}
	}
	// Replica placement is partition-ordered with wraparound, owner first.
	for part, want := range map[uint32][]uint32{0: {0, 1}, 2: {2, 3}, 3: {3, 0}} {
		got := r.Replicas(part)
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("Replicas(%d) = %v, want %v", part, got, want)
		}
	}
	// A partition no longer in the ring still resolves to live replicas.
	smaller, err := NewRing(2, 2, members[:2])
	if err != nil {
		t.Fatal(err)
	}
	got := smaller.Replicas(3)
	if len(got) != 2 || got[0] != 3 || got[1] != 0 {
		t.Fatalf("Replicas of departed partition = %v", got)
	}

	// Wire roundtrip survives parse -> encode -> parse.
	enc := appendRing(nil, r)
	r2, err := parseRing(enc)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epoch != r.Epoch || r2.RF != r.RF || len(r2.Members()) != len(members) {
		t.Fatalf("ring roundtrip lost state: %+v", r2)
	}
	for i, m := range r2.Members() {
		if m != members[i] {
			t.Fatalf("member %d roundtripped as %+v", i, m)
		}
	}
	if _, err := NewRing(1, 2, []Member{{Part: 0, Addr: "a"}, {Part: 0, Addr: "b"}}); err == nil {
		t.Fatal("duplicate partition accepted")
	}
}

// clusterEnv is a simulated cluster whose stores survive server
// restarts (the durable-store model the chaos harness uses).
type clusterEnv struct {
	t      *testing.T
	net    *netsim.Network
	ring   *Ring
	stores []*Store
	srvs   []*Server
	nodes  []*ClusterNode
	opts   []ServerOption // applied to every member server
}

func newClusterEnv(t *testing.T, n, rf int) *clusterEnv {
	return newClusterEnvOpts(t, n, rf)
}

// newClusterEnvOpts is newClusterEnv with extra server options applied
// to every member (e.g. an admission gate).
func newClusterEnvOpts(t *testing.T, n, rf int, opts ...ServerOption) *clusterEnv {
	t.Helper()
	e := &clusterEnv{t: t, net: netsim.New(), opts: opts}
	members := make([]Member, n)
	for i := range members {
		members[i] = Member{Part: uint32(i), Addr: simMemberAddr(uint32(i))}
	}
	ring, err := NewRing(1, rf, members)
	if err != nil {
		t.Fatal(err)
	}
	e.ring = ring
	e.stores = make([]*Store, n)
	e.srvs = make([]*Server, n)
	e.nodes = make([]*ClusterNode, n)
	for i := 0; i < n; i++ {
		store, err := NewPartitionStore(uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		e.stores[i] = store
		e.start(i)
	}
	t.Cleanup(e.close)
	return e
}

// start brings up (or back up) member i on its existing store.
func (e *clusterEnv) start(i int) {
	e.t.Helper()
	srv, node, err := StartSimClusterMember(e.net, e.ring, uint32(i), e.stores[i], e.opts...)
	if err != nil {
		e.t.Fatalf("start member %d: %v", i, err)
	}
	e.srvs[i] = srv
	e.nodes[i] = node
}

// kill force-closes member i's server.
func (e *clusterEnv) kill(i int) {
	e.srvs[i].Close()
	e.nodes[i].Close()
}

func (e *clusterEnv) close() {
	for i := range e.srvs {
		if e.srvs[i] != nil {
			e.kill(i)
		}
	}
}

func (e *clusterEnv) client(local string, opt ClusterOptions) *ClusterClient {
	e.t.Helper()
	tree := taint.NewTree()
	c, err := DialSimCluster(e.net, local, e.ring, tree, opt)
	if err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterRegisterLookupReplicate(t *testing.T) {
	e := newClusterEnv(t, 3, 2)
	tree := taint.NewTree()
	c, err := DialSimCluster(e.net, "app:1", e.ring, tree, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200
	ids := make([]uint32, n)
	blobs := make([]string, n)
	for i := 0; i < n; i++ {
		tt := tree.NewSource(fmt.Sprintf("cluster-%d", i), "app:1")
		id, err := c.Register(tt)
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		if id == 0 || IsProvisional(id) {
			t.Fatalf("register %d returned id %x", i, id)
		}
		blob, err := taint.MarshalTaint(tt)
		if err != nil {
			t.Fatal(err)
		}
		// The id's partition bits name the blob's ring owner: routing is
		// stateless for every other client.
		if want := e.ring.OwnerOfBlob(blob); PartitionOf(id) != want {
			t.Fatalf("id %x minted by partition %d, ring owner is %d", id, PartitionOf(id), want)
		}
		ids[i], blobs[i] = id, string(blob)
	}

	// All partitions got traffic and every fresh id was synchronously
	// replicated to its successor before the register ack.
	parts := make(map[uint32]int)
	for _, id := range ids {
		parts[PartitionOf(id)]++
	}
	if len(parts) != 3 {
		t.Fatalf("ids landed in %d partitions, want 3 (%v)", len(parts), parts)
	}
	var pushed int64
	for i, node := range e.nodes {
		pushed += node.Pushed()
		if h := node.Hinted(); h != 0 {
			t.Fatalf("node %d hinted %d pushes on a healthy network", i, h)
		}
	}
	if pushed == 0 {
		t.Fatal("no replication push ever happened")
	}
	for i := range e.stores {
		succ := e.ring.Successors(uint32(i))[0]
		if got := e.stores[succ].Replicated(uint32(i)); got != parts[uint32(i)] {
			t.Fatalf("partition %d: successor %d replicated %d of %d entries", i, succ, got, parts[uint32(i)])
		}
	}

	// A fresh client resolves every id — singly and as one batch — to
	// byte-identical content, whichever replica the rotation picks.
	c2 := e.client("app:2", ClusterOptions{})
	for i, id := range ids {
		got, err := c2.Lookup(id)
		if err != nil {
			t.Fatalf("fresh lookup %x: %v", id, err)
		}
		b, _ := taint.MarshalTaint(got)
		if string(b) != blobs[i] {
			t.Fatalf("id %x resolved to different bytes", id)
		}
	}
	c3 := e.client("app:3", ClusterOptions{})
	ts, err := c3.LookupBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		b, _ := taint.MarshalTaint(ts[i])
		if string(b) != blobs[i] {
			t.Fatalf("batch id %x resolved to different bytes", ids[i])
		}
	}

	// Registration stays content-addressed across clients: the same
	// bytes resolve to the same id from anywhere.
	tree4 := taint.NewTree()
	c4, err := DialSimCluster(e.net, "app:4", e.ring, tree4, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c4.Close()
	for i := 0; i < n; i += 17 {
		tt := tree4.NewSource(fmt.Sprintf("cluster-%d", i), "app:1")
		id, err := c4.Register(tt)
		if err != nil || id != ids[i] {
			t.Fatalf("re-register from second node: id %x want %x (%v)", id, ids[i], err)
		}
	}

	// Unknown ids fail typed, after consulting every replica.
	if _, err := c2.Lookup(partitionBase(1) | 777777); !errors.Is(err, ErrUnknownGlobalID) {
		t.Fatalf("unknown id error = %v", err)
	}
}

func TestClusterRegisterBatchGroupsByOwner(t *testing.T) {
	e := newClusterEnv(t, 3, 2)
	tree := taint.NewTree()
	c, err := DialSimCluster(e.net, "app:1", e.ring, tree, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ts := make([]taint.Taint, 120)
	for i := range ts {
		ts[i] = tree.NewSource(fmt.Sprintf("batch-%d", i%60), "app:1") // duplicates included
	}
	ids, err := c.RegisterBatch(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		if ids[i] == 0 {
			t.Fatalf("position %d unresolved", i)
		}
		if ids[i] != ids[(i+60)%120] {
			t.Fatalf("duplicate taints got ids %x and %x", ids[i], ids[(i+60)%120])
		}
		blob, _ := taint.MarshalTaint(ts[i])
		if want := e.ring.OwnerOfBlob(blob); PartitionOf(ids[i]) != want {
			t.Fatalf("batch id %x not minted by ring owner %d", ids[i], want)
		}
	}
}

// TestClusterMembershipJoin grows a running 2-member cluster to 3 under
// load: the joiner announces itself through one seed, the membership
// gossips, the client refreshes and re-routes — and not one resolution
// is lost across the transition.
func TestClusterMembershipJoin(t *testing.T) {
	e := newClusterEnv(t, 2, 2)
	tree := taint.NewTree()
	c, err := DialSimCluster(e.net, "app:1", e.ring, tree, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Phase 1: registrations against the 2-member ring.
	type reg struct {
		id   uint32
		blob string
	}
	var regs []reg
	registerN := func(prefix string, n int) {
		for i := 0; i < n; i++ {
			tt := tree.NewSource(fmt.Sprintf("%s-%d", prefix, i), "app:1")
			id, err := c.Register(tt)
			if err != nil || id == 0 || IsProvisional(id) {
				t.Fatalf("register %s-%d: id %x, %v", prefix, i, id, err)
			}
			blob, _ := taint.MarshalTaint(tt)
			regs = append(regs, reg{id: id, blob: string(blob)})
		}
	}
	registerN("pre", 100)

	// The joiner: partition 2 starts on its own and joins via member 0.
	store2, err := NewPartitionStore(2)
	if err != nil {
		t.Fatal(err)
	}
	joiner := Member{Part: 2, Addr: simMemberAddr(2)}
	node2, err := NewClusterNode(joiner, nil, 2, func(addr string) (io.ReadWriteCloser, error) {
		return e.net.DialFrom("tm2:peer", addr)
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := e.net.Listen(joiner.Addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(store2, simAcceptor{l: l}, nil, WithClusterNode(node2))
	srv2.Start()
	defer srv2.Close()
	newRing, err := node2.JoinVia(simMemberAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(newRing.Members()) != 3 || newRing.Epoch <= e.ring.Epoch {
		t.Fatalf("join produced ring %+v", newRing)
	}
	// The join gossiped: the seed and, through it, the other member.
	for i, node := range e.nodes {
		if got := len(node.Ring().Members()); got != 3 {
			t.Fatalf("member %d still sees %d members after join", i, got)
		}
	}

	// The client learns the ring from any member and re-routes.
	got, err := c.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Members()) != 3 {
		t.Fatalf("client refreshed to %d members", len(got.Members()))
	}
	registerN("post", 200)
	sawPart2 := false
	for _, r := range regs {
		if PartitionOf(r.id) == 2 {
			sawPart2 = true
			break
		}
	}
	if !sawPart2 {
		t.Fatal("no registration ever routed to the joiner")
	}

	// Zero dropped resolutions: everything registered under either ring
	// resolves byte-identically from a fresh client on the new ring.
	tree2 := taint.NewTree()
	c2, err := DialSimCluster(e.net, "app:2", newRing, tree2, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, r := range regs {
		tt, err := c2.Lookup(r.id)
		if err != nil {
			t.Fatalf("post-join lookup %x: %v", r.id, err)
		}
		b, _ := taint.MarshalTaint(tt)
		if string(b) != r.blob {
			t.Fatalf("id %x changed content across the membership change", r.id)
		}
	}
}

// TestClusterReadRepairDivergence is the satellite scenario: a replica
// misses entries because it was unreachable mid-replication (hinted
// handoff), then comes back EMPTY — and ordinary lookups heal it back
// to the owner's state through read-repair.
func TestClusterReadRepairDivergence(t *testing.T) {
	e := newClusterEnv(t, 2, 2)
	tree := taint.NewTree()
	c, err := DialSimCluster(e.net, "app:1", e.ring, tree, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Mint taints owned by partition 0 (successor: partition 1), with
	// the replica cut off so every push lands as hinted handoff.
	e.net.Partition("tm1", "*")
	var ids []uint32
	blobs := make(map[uint32]string)
	for i := 0; len(ids) < 48; i++ {
		tt := tree.NewSource(fmt.Sprintf("diverge-%d", i), "app:1")
		blob, err := taint.MarshalTaint(tt)
		if err != nil {
			t.Fatal(err)
		}
		if e.ring.OwnerOfBlob(blob) != 0 {
			continue // only partition-0-owned content for this scenario
		}
		id, err := c.Register(tt)
		if err != nil {
			t.Fatalf("register during replica outage: %v", err)
		}
		ids = append(ids, id)
		blobs[id] = string(blob)
	}
	if e.nodes[0].Hinted() == 0 {
		t.Fatal("no hinted handoff: the partition cut missed replication")
	}
	if got := e.stores[1].Replicated(0); got != 0 {
		t.Fatalf("cut-off replica still adopted %d entries", got)
	}

	// The replica comes back EMPTY: worst-case divergence (a disk loss),
	// on a healed network.
	e.net.HealAll()
	e.kill(1)
	fresh, err := NewPartitionStore(1)
	if err != nil {
		t.Fatal(err)
	}
	e.stores[1] = fresh
	e.start(1)

	// A fresh client's first batch lookup rotates to the empty replica
	// first, falls through to the owner, and pushes the entries back.
	c2 := e.client("app:2", ClusterOptions{})
	ts, err := c2.LookupBatch(ids)
	if err != nil {
		t.Fatalf("lookup against diverged replica: %v", err)
	}
	for i, tt := range ts {
		b, _ := taint.MarshalTaint(tt)
		if string(b) != blobs[ids[i]] {
			t.Fatalf("id %x resolved to wrong bytes during divergence", ids[i])
		}
	}
	if c2.Repaired() == 0 {
		t.Fatal("lookups resolved without repairing the stale replica")
	}
	if got := e.stores[1].Replicated(0); got != len(ids) {
		t.Fatalf("replica healed to %d of %d entries", got, len(ids))
	}

	// Healed means healed: kill the owner outright; the replica alone
	// now serves every id.
	e.kill(0)
	c3 := e.client("app:3", ClusterOptions{
		Resilient: ResilientOptions{BreakerThreshold: 1},
	})
	for _, id := range ids {
		tt, err := c3.Lookup(id)
		if err != nil {
			t.Fatalf("lookup %x with owner dead: %v", id, err)
		}
		b, _ := taint.MarshalTaint(tt)
		if string(b) != blobs[id] {
			t.Fatalf("id %x wrong bytes from healed replica", id)
		}
	}
}
