package taintmap

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dista/internal/bench/hist"
	"dista/internal/core/taint"
)

// ClusterClient is a Client over a partitioned, replicated Taint Map:
// one handle that makes N taintmapd instances look like the single
// logical map the rest of the tracker was written against.
//
// Routing is stateless on both axes. Registrations hash the serialized
// taint (the blobs are content-addressed, so the hash is stable across
// nodes and retries) onto the ring to find the owning partition;
// lookups read the partition index straight out of the id's high bits
// (see idspace.go) and may be served by the owner or any ring successor
// replicating it — the client rotates across them to spread load, falls
// through on a replica that does not (yet) hold the id, and pushes the
// entries back to such replicas once resolved (read-repair).
//
// Every member is fronted by its own ResilientClient, so the PR 3
// failure machinery applies per partition: a dead member's traffic
// journals against a partition-local store (provisional ids carry the
// partition that will own them) and drains when the member returns,
// while the other partitions stay healthy. A membership change is just
// a new ring: in-flight registrations complete against the members that
// accepted them, and only future registrations re-route.
type ClusterClient struct {
	tree *taint.Tree
	dial func(addr string) (io.ReadWriteCloser, error)
	opt  ClusterOptions
	memo *cache // shared by every member client

	ring atomic.Pointer[Ring]

	// table is the lock-free member snapshot the request paths route
	// through, indexed by partition. Rebuilt from members under mu on
	// every membership change; readers only Load. Keeping the hot path
	// off mu matters: every miss resolves its owner handle, and eight
	// workload goroutines serializing on a mutex just to index a
	// read-mostly map measurably dents register throughput.
	table atomic.Pointer[[MaxPartitions]*clusterMember]

	mu      sync.Mutex
	members map[uint32]*clusterMember
	closed  bool

	rr       atomic.Uint32 // lookup replica rotation
	repaired atomic.Int64  // entries pushed back to stale replicas

	// budget is the shared retry budget: one bucket gating every
	// member's reconnect dials and this layer's hedges, so a brownout
	// cannot multiply into a cluster-wide retry storm.
	budget *Budget
	hedge  hist.Hist

	hedges       atomic.Int64 // hedge attempts launched
	hedgeWins    atomic.Int64 // lookups won by the hedged attempt
	budgetDenied atomic.Int64 // hedges suppressed by the empty budget
}

var _ Client = (*ClusterClient)(nil)

// ClusterOptions tunes a ClusterClient.
type ClusterOptions struct {
	// Resilient configures each member's resilience layer (defaults as
	// in ResilientOptions).
	Resilient ResilientOptions

	// HedgeDelay is the initial replica-lookup hedge delay: how long the
	// first attempt may run before the next replica is raced against it.
	// Once the latency tracker has warmed up, the observed p99 replaces
	// this value, so it only matters for the first few dozen lookups.
	// Zero means the 20ms default; negative disables hedging entirely
	// and restores sequential replica rotation.
	HedgeDelay time.Duration

	// OpTimeout bounds one whole lookup operation — all replica
	// attempts and hedges together. Zero means no operation deadline
	// (each attempt is still bounded by Resilient.CallTimeout).
	OpTimeout time.Duration

	// BudgetRate and BudgetBurst configure the shared retry budget in
	// tokens per second and bucket capacity. Reconnect dials and hedges
	// each cost one token; first attempts are free. Zero means the
	// defaults (50/s, burst 100); negative disables budgeting.
	BudgetRate  float64
	BudgetBurst float64
}

// withClusterDefaults fills the zero values in.
func (o ClusterOptions) withClusterDefaults() ClusterOptions {
	if o.HedgeDelay == 0 {
		o.HedgeDelay = 20 * time.Millisecond
	}
	if o.BudgetRate == 0 {
		o.BudgetRate = 50
	}
	if o.BudgetBurst == 0 {
		o.BudgetBurst = 100
	}
	return o
}

// DialClusterAddrs builds a Client from a flat endpoint list — the form
// a deployment writes in its agent args, where the addresses are known
// but the partition layout is the cluster's own business. One address
// is the degenerate deployment and gets the plain single-server
// resilient client (no routing layer to pay for). Several addresses
// bootstrap a ClusterClient: the ring (partition indices, replication
// factor, any members missing from the list) is fetched from the first
// address that answers, so the list only has to name enough live
// members to find the cluster, not describe it.
func DialClusterAddrs(addrs []string, dial func(addr string) (io.ReadWriteCloser, error), tree *taint.Tree, opt ClusterOptions) (Client, error) {
	switch len(addrs) {
	case 0:
		return nil, errors.New("taintmap: no taint map addresses")
	case 1:
		addr := addrs[0]
		opt = opt.withClusterDefaults()
		ropt := opt.Resilient
		clk := ropt.clk
		if clk == nil {
			clk = realClock{}
		}
		ropt.budget = newBudgetClock(opt.BudgetRate, opt.BudgetBurst, clk)
		return NewResilientClient(func() (io.ReadWriteCloser, error) { return dial(addr) }, tree, ropt), nil
	}
	var lastErr error
	for _, addr := range addrs {
		conn, err := dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		rc := NewRemoteClient(conn, tree)
		reply, err := rc.call(opRingTag, nil)
		rc.Close()
		if err != nil {
			lastErr = err
			continue
		}
		ring, err := parseRing(reply)
		if err != nil {
			lastErr = err
			continue
		}
		return NewClusterClient(ring, dial, tree, opt)
	}
	return nil, fmt.Errorf("taintmap: cluster bootstrap from %d addresses: %w", len(addrs), lastErr)
}

// clusterMember is one ring member's client handle.
type clusterMember struct {
	part uint32
	addr string
	rc   *ResilientClient
}

// NewClusterClient builds a client over the given membership. dial
// opens a connection to a member address; it is called per member and
// again on every reconnect.
func NewClusterClient(ring *Ring, dial func(addr string) (io.ReadWriteCloser, error), tree *taint.Tree, opt ClusterOptions) (*ClusterClient, error) {
	opt = opt.withClusterDefaults()
	c := &ClusterClient{
		tree:    tree,
		dial:    dial,
		opt:     opt,
		memo:    &cache{},
		members: make(map[uint32]*clusterMember),
	}
	clk := opt.Resilient.clk
	if clk == nil {
		clk = realClock{}
	}
	c.budget = newBudgetClock(opt.BudgetRate, opt.BudgetBurst, clk)
	c.ring.Store(ring)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range ring.Members() {
		if _, err := c.addMemberLocked(m); err != nil {
			return nil, err
		}
	}
	c.publishLocked()
	return c, nil
}

// publishLocked rebuilds the lock-free member table from c.members.
// Caller holds c.mu.
func (c *ClusterClient) publishLocked() {
	var t [MaxPartitions]*clusterMember
	for part, cm := range c.members {
		t[part] = cm
	}
	c.table.Store(&t)
}

// addMemberLocked creates the client handle for one member: a
// ResilientClient sharing the cluster-wide memo, journaling against a
// store of the member's own partition. Caller holds c.mu.
func (c *ClusterClient) addMemberLocked(m Member) (*clusterMember, error) {
	local, err := NewPartitionStore(m.Part)
	if err != nil {
		return nil, err
	}
	ropt := c.opt.Resilient
	ropt.memo = c.memo
	ropt.local = local
	ropt.budget = c.budget
	addr := m.Addr
	rc := NewResilientClient(func() (io.ReadWriteCloser, error) { return c.dial(addr) }, c.tree, ropt)
	cm := &clusterMember{part: m.Part, addr: m.Addr, rc: rc}
	c.members[m.Part] = cm
	return cm, nil
}

// member returns the handle for a partition, nil when the partition has
// no member (e.g. ids minted under an older ring by a departed server —
// the caller falls through to the partition's replicas).
func (c *ClusterClient) member(part uint32) *clusterMember {
	if part >= MaxPartitions {
		return nil
	}
	return c.table.Load()[part]
}

// Ring returns the membership snapshot the client is routing on.
func (c *ClusterClient) Ring() *Ring { return c.ring.Load() }

// Repaired reports how many entries this client pushed back to stale
// replicas.
func (c *ClusterClient) Repaired() int64 { return c.repaired.Load() }

// UpdateRing installs a newer membership snapshot: handles are created
// for new members, re-dialed for re-addressed ones, and kept for
// departed ones (their partition's ids stay resolvable and any
// journaled registrations still drain if the server returns). Rings
// with a stale epoch are ignored.
func (c *ClusterClient) UpdateRing(r *Ring) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	old := c.ring.Load()
	if r.Epoch < old.Epoch {
		return nil
	}
	for _, m := range r.Members() {
		cm := c.members[m.Part]
		if cm == nil {
			if _, err := c.addMemberLocked(m); err != nil {
				return err
			}
			continue
		}
		if cm.addr != m.Addr {
			cm.rc.Close()
			if _, err := c.addMemberLocked(m); err != nil {
				return err
			}
		}
	}
	c.publishLocked()
	c.ring.Store(r)
	return nil
}

// Refresh fetches the ring from the first member that answers and
// installs it — how a client learns that a server joined.
func (c *ClusterClient) Refresh() (*Ring, error) {
	c.mu.Lock()
	handles := make([]*clusterMember, 0, len(c.members))
	for _, cm := range c.members {
		handles = append(handles, cm)
	}
	c.mu.Unlock()
	var lastErr error = ErrDegraded
	for _, cm := range handles {
		reply, err := cm.rc.rawCall(opRingTag, nil)
		if err != nil {
			lastErr = err
			continue
		}
		r, err := parseRing(reply)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.UpdateRing(r); err != nil {
			return nil, err
		}
		return c.ring.Load(), nil
	}
	return nil, fmt.Errorf("taintmap: ring refresh: %w", lastErr)
}

// Register implements Client: marshal once, route by content hash to
// the owning partition, register there (journaling locally if that
// member is down).
func (c *ClusterClient) Register(t taint.Taint) (uint32, error) {
	if t.Empty() {
		return 0, nil
	}
	if id := t.GlobalID(); id != 0 {
		return id, nil
	}
	blob, err := taint.MarshalTaint(t)
	if err != nil {
		return 0, err
	}
	cm := c.member(c.ring.Load().OwnerOfBlob(blob))
	if cm == nil {
		return 0, fmt.Errorf("%w: no member for owner partition", ErrDegraded)
	}
	id, err := cm.rc.registerMarshaled(t, blob)
	if err != nil && errors.Is(err, ErrOverloaded) {
		// The owner is shedding load, not down: fall into that
		// partition's journaled degraded mode instead of failing the
		// caller — the provisional id remaps when the drain replays it.
		return cm.rc.journalFallback(t, blob)
	}
	return id, err
}

// Lookup implements Client: route by the id's partition bits, rotating
// across the partition's replicas; a replica that does not hold the id
// falls through to the next and is healed afterwards by read-repair.
func (c *ClusterClient) Lookup(id uint32) (taint.Taint, error) {
	if id == 0 {
		return taint.Taint{}, nil
	}
	if t, ok := c.memo.get(id); ok {
		return t, nil
	}
	part := PartitionOf(id)
	if IsProvisional(id) {
		// Provisional ids never cross the wire: resolve through the
		// member whose journal minted them.
		cm := c.member(part)
		if cm == nil {
			return taint.Taint{}, fmt.Errorf("%w: provisional id %d of unknown member", ErrDegraded, id)
		}
		return cm.rc.Lookup(id)
	}
	cms := c.replicaOrder(part)
	if len(cms) == 0 {
		return taint.Taint{}, fmt.Errorf("%w: no member for partition %d", ErrDegraded, part)
	}
	if len(cms) == 1 || c.opt.HedgeDelay < 0 {
		// Single replica, or hedging disabled: sequential rotation with
		// each member's full resilience machinery, as before hedging.
		var stale []*clusterMember
		lastErr := error(ErrDegraded)
		for _, cm := range cms {
			t, err := cm.rc.Lookup(id)
			if err == nil {
				c.repairTo(stale, []uint32{id}, []taint.Taint{t})
				return t, nil
			}
			lastErr = err
			if errors.Is(err, ErrUnknownGlobalID) {
				// This replica is missing the entry, not down: remember
				// it for read-repair once another replica resolves it.
				stale = append(stale, cm)
			}
		}
		return taint.Taint{}, lastErr
	}
	var got atomic.Pointer[taint.Taint]
	stale, err := c.hedgedCall(cms, func(cm *clusterMember, deadline time.Time) error {
		t, e := cm.rc.lookupAttempt(id, deadline)
		if e == nil {
			got.Store(&t)
		}
		return e
	})
	if err != nil {
		return taint.Taint{}, err
	}
	t := *got.Load()
	c.repairTo(stale, []uint32{id}, []taint.Taint{t})
	return t, nil
}

// replicaOrder returns the live member handles of a partition's replica
// set, rotated so successive lookups start on different replicas.
func (c *ClusterClient) replicaOrder(part uint32) []*clusterMember {
	reps := c.ring.Load().Replicas(part)
	start := int(c.rr.Add(1)) % len(reps)
	cms := make([]*clusterMember, 0, len(reps))
	for i := range reps {
		if cm := c.member(reps[(start+i)%len(reps)]); cm != nil {
			cms = append(cms, cm)
		}
	}
	return cms
}

// hedgeWarmup is the observation count below which the latency
// histogram is considered too sparse to trust and the configured
// initial hedge delay is used instead.
const hedgeWarmup = 32

// hedgeDelay is the delay before a lookup's first attempt gets raced by
// the next replica: the tracked p99 once warm, the configured initial
// delay before that.
func (c *ClusterClient) hedgeDelay() time.Duration {
	if c.hedge.Count() >= hedgeWarmup {
		if d, ok := c.hedge.Quantile(0.99); ok {
			return d
		}
	}
	return c.opt.HedgeDelay
}

// hedgedCall runs one fail-fast attempt (the call closure) against the
// replicas in order, hedging: the first attempt runs alone until the
// tracked p99 elapses, then — if the retry budget grants a token — the
// next replica is raced against it and the first success wins. A
// *failed* attempt falls through to the next replica immediately and
// for free; that is rotation, not hedging, and charging it would let a
// dead replica drain the budget. Losing attempts are abandoned (their
// goroutines park on the member's own call timeout and deliver into a
// buffered channel), and replicas that answered ErrUnknownGlobalID are
// returned for read-repair.
func (c *ClusterClient) hedgedCall(cms []*clusterMember, call func(cm *clusterMember, deadline time.Time) error) (stale []*clusterMember, err error) {
	var deadline time.Time
	if c.opt.OpTimeout > 0 {
		deadline = time.Now().Add(c.opt.OpTimeout)
	}
	type outcome struct {
		cm     *clusterMember
		err    error
		took   time.Duration
		hedged bool
	}
	results := make(chan outcome, len(cms))
	next, inflight := 0, 0
	launch := func(hedged bool) {
		cm := cms[next]
		next++
		inflight++
		go func() {
			start := time.Now()
			e := call(cm, deadline)
			results <- outcome{cm: cm, err: e, took: time.Since(start), hedged: hedged}
		}()
	}
	launch(false)
	var timerC <-chan time.Time
	if next < len(cms) {
		timer := time.NewTimer(c.hedgeDelay())
		defer timer.Stop()
		timerC = timer.C
	}
	lastErr := error(ErrDegraded)
	for inflight > 0 {
		select {
		case out := <-results:
			inflight--
			if out.err == nil {
				c.hedge.Observe(out.took)
				if out.hedged {
					c.hedgeWins.Add(1)
				}
				return stale, nil
			}
			lastErr = out.err
			if errors.Is(out.err, ErrUnknownGlobalID) {
				stale = append(stale, out.cm)
			}
			if next < len(cms) {
				launch(false)
			}
		case <-timerC:
			timerC = nil
			if next < len(cms) {
				if c.budget.TryTake(1) {
					c.hedges.Add(1)
					launch(true)
				} else {
					c.budgetDenied.Add(1)
				}
			}
		}
	}
	return stale, lastErr
}

// RegisterBatch implements Client: pending taints are marshaled once,
// grouped by owning partition, and each group goes to its owner as one
// batch (so a cluster-wide batch costs one round trip per partition,
// not per taint).
func (c *ClusterClient) RegisterBatch(ts []taint.Taint) ([]uint32, error) {
	ids, pending, posOf := collectRegister(ts)
	if len(pending) == 0 {
		return ids, nil
	}
	blobs, err := marshalAll(pending)
	if err != nil {
		return nil, err
	}
	ring := c.ring.Load()
	groups := make(map[uint32][]int) // owner partition -> indices into pending
	for i, blob := range blobs {
		part := ring.OwnerOfBlob(blob)
		groups[part] = append(groups[part], i)
	}
	for part, idxs := range groups {
		cm := c.member(part)
		if cm == nil {
			return nil, fmt.Errorf("%w: no member for owner partition %d", ErrDegraded, part)
		}
		gts := make([]taint.Taint, len(idxs))
		gblobs := make([][]byte, len(idxs))
		for k, i := range idxs {
			gts[k] = pending[i]
			gblobs[k] = blobs[i]
		}
		got, err := cm.rc.registerPending(gts, gblobs)
		if err != nil && errors.Is(err, ErrOverloaded) {
			// The group's owner is shedding: journal the group into that
			// partition's degraded mode and hand out provisional ids.
			got = make([]uint32, len(gts))
			for k := range gts {
				if got[k], err = cm.rc.journalFallback(gts[k], gblobs[k]); err != nil {
					return nil, err
				}
			}
		} else if err != nil {
			return nil, err
		}
		for k, i := range idxs {
			for _, pos := range posOf[pending[i]] {
				ids[pos] = got[k]
			}
		}
	}
	return ids, nil
}

// LookupBatch implements Client: memo misses are grouped by partition
// and resolved per group against the partition's replicas, with the
// same rotation, fall-through and read-repair as single lookups.
func (c *ClusterClient) LookupBatch(ids []uint32) ([]taint.Taint, error) {
	ts, missing := c.memo.splitBatch(ids)
	if len(missing) == 0 {
		return ts, nil
	}
	groups := make(map[uint32][]uint32)
	provGroups := make(map[uint32][]uint32)
	for _, id := range missing {
		if IsProvisional(id) {
			provGroups[PartitionOf(id)] = append(provGroups[PartitionOf(id)], id)
		} else {
			groups[PartitionOf(id)] = append(groups[PartitionOf(id)], id)
		}
	}
	ring := c.ring.Load()
	for part, group := range groups {
		if err := c.lookupGroup(ring, part, group); err != nil {
			return nil, err
		}
	}
	for part, group := range provGroups {
		// Provisional ids resolve via the minting member's journal; they
		// never reach the wire or the replica set.
		cm := c.member(part)
		if cm == nil {
			return nil, fmt.Errorf("%w: provisional ids of unknown member", ErrDegraded)
		}
		if _, err := cm.rc.LookupBatch(group); err != nil {
			return nil, err
		}
	}
	// Every missing id is in the memo now; fill the unresolved slots.
	for i, id := range ids {
		if id != 0 && ts[i].Empty() {
			t, ok := c.memo.get(id)
			if !ok {
				return nil, fmt.Errorf("taintmap: id %d lost between lookup and fill", id)
			}
			ts[i] = t
		}
	}
	return ts, nil
}

// lookupGroup resolves one partition's (non-provisional) ids against
// its replicas and read-repairs any replica observed missing them.
func (c *ClusterClient) lookupGroup(ring *Ring, part uint32, group []uint32) error {
	cms := c.replicaOrder(part)
	if len(cms) == 0 {
		return fmt.Errorf("%w: no member for partition %d", ErrDegraded, part)
	}
	if len(cms) == 1 || c.opt.HedgeDelay < 0 {
		var stale []*clusterMember
		lastErr := error(ErrDegraded)
		for _, cm := range cms {
			got, err := cm.rc.LookupBatch(group)
			if err == nil {
				c.repairTo(stale, group, got)
				return nil
			}
			lastErr = err
			if errors.Is(err, ErrUnknownGlobalID) {
				stale = append(stale, cm)
			}
		}
		return lastErr
	}
	stale, err := c.hedgedCall(cms, func(cm *clusterMember, deadline time.Time) error {
		return cm.rc.lookupBatchAttempt(group, deadline)
	})
	if err != nil {
		return err
	}
	if len(stale) > 0 {
		// The attempt path resolves into the shared memo rather than
		// returning the taints; refetch them to build the repair batch.
		ts := make([]taint.Taint, len(group))
		for i, id := range group {
			t, ok := c.memo.get(id)
			if !ok {
				return nil // raced an eviction; leave repair to a later reader
			}
			ts[i] = t
		}
		c.repairTo(stale, group, ts)
	}
	return nil
}

// repairTo pushes resolved (id, taint) entries to replicas that were
// observed missing them. Best-effort: a failed push leaves the replica
// for the next reader (or the owner's hinted entries) to heal.
func (c *ClusterClient) repairTo(stale []*clusterMember, ids []uint32, ts []taint.Taint) {
	if len(stale) == 0 {
		return
	}
	blobs := make([][]byte, 0, len(ts))
	okIDs := make([]uint32, 0, len(ts))
	for i, t := range ts {
		blob, err := taint.MarshalTaint(t)
		if err != nil {
			continue
		}
		okIDs = append(okIDs, ids[i])
		blobs = append(blobs, blob)
	}
	if len(okIDs) == 0 {
		return
	}
	payload := appendEntries(nil, okIDs, blobs)
	for _, cm := range stale {
		if _, err := cm.rc.rawCall(opRepairTag, payload); err == nil {
			c.repaired.Add(int64(len(okIDs)))
		}
	}
}

// Healths reports each member's resilience state, keyed by partition.
func (c *ClusterClient) Healths() map[uint32]Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint32]Health, len(c.members))
	for part, cm := range c.members {
		out[part] = cm.rc.Health()
	}
	return out
}

// ClusterHealth is a cluster-wide snapshot: per-member resilience
// state plus the hedge, budget and degradation gauges that only exist
// at this layer.
type ClusterHealth struct {
	Members            map[uint32]Health
	DegradedPartitions []uint32 // partitions journaling locally (breaker tripped)

	Hedges       int64         // hedge attempts launched
	HedgeWins    int64         // lookups won by the hedged attempt
	BudgetDenied int64         // hedges suppressed by an empty budget
	BudgetTokens float64       // tokens currently in the shared budget
	HedgeDelay   time.Duration // delay the next hedge would use
	Repaired     int64         // entries pushed back to stale replicas
}

// Health reports the cluster client's current state.
func (c *ClusterClient) Health() ClusterHealth {
	h := ClusterHealth{
		Members:      c.Healths(),
		Hedges:       c.hedges.Load(),
		HedgeWins:    c.hedgeWins.Load(),
		BudgetDenied: c.budgetDenied.Load(),
		BudgetTokens: c.budget.Tokens(),
		HedgeDelay:   c.hedgeDelay(),
		Repaired:     c.repaired.Load(),
	}
	for part, mh := range h.Members {
		if mh.Degraded {
			h.DegradedPartitions = append(h.DegradedPartitions, part)
		}
	}
	sort.Slice(h.DegradedPartitions, func(i, j int) bool {
		return h.DegradedPartitions[i] < h.DegradedPartitions[j]
	})
	return h
}

// Close implements Client: it closes every member handle.
func (c *ClusterClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	handles := make([]*clusterMember, 0, len(c.members))
	for _, cm := range c.members {
		handles = append(handles, cm)
	}
	c.mu.Unlock()
	var first error
	for _, cm := range handles {
		if err := cm.rc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
