package taintmap

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

// TestServerCloseTwiceNeverStarted is the regression test for the Close
// deadlock: a second Close on a server whose Start was never called
// used to block forever on the done channel.
func TestServerCloseTwiceNeverStarted(t *testing.T) {
	n := netsim.New()
	l, err := n.Listen("tm:1")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewStore(), simAcceptor{l: l}, nil)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	finished := make(chan struct{})
	go func() {
		srv.Close()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("second Close on a never-started server deadlocked")
	}
}

// TestConcurrentClients hammers one shared RemoteClient and one shared
// LocalClient from 8 goroutines with overlapping register/lookup
// batches, then asserts the global invariants: every occurrence of a
// blob observed the same id, and the store allocated each distinct blob
// exactly one id. Run under -race this also exercises the sharded
// store, the lock-free page table, the mux demultiplexer and the
// singleflight table.
func TestConcurrentClients(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:7")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	remoteTree := taint.NewTree()
	remote, err := DialSim(n, "tm:7", remoteTree)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	localTree := taint.NewTree()
	local := NewLocalClient(srv.Store(), localTree)

	const goroutines = 8
	const rounds = 60
	const distinct = 24 // logical taints shared by all goroutines

	var mu sync.Mutex
	idOf := make(map[string]uint32) // marshalled blob -> observed id

	record := func(ts []taint.Taint, ids []uint32) error {
		for i, tt := range ts {
			blob, err := taint.MarshalTaint(tt)
			if err != nil {
				return err
			}
			mu.Lock()
			prev, seen := idOf[string(blob)]
			if !seen {
				idOf[string(blob)] = ids[i]
			}
			mu.Unlock()
			if seen && prev != ids[i] {
				return fmt.Errorf("blob got ids %d and %d", prev, ids[i])
			}
			if ids[i] == 0 {
				return fmt.Errorf("tainted value got id 0")
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var client Client = remote
			tree := remoteTree
			if g%2 == 1 {
				client, tree = local, localTree
			}
			for r := 0; r < rounds; r++ {
				// Overlapping windows of the shared logical taints; each
				// goroutine builds them in its client's tree.
				ts := make([]taint.Taint, 0, 6)
				for k := 0; k < 6; k++ {
					ts = append(ts, tree.NewSource(
						fmt.Sprintf("shared-%d", (g+r+k)%distinct), "common:1"))
				}
				ids, err := client.RegisterBatch(ts)
				if err != nil {
					errs <- err
					return
				}
				if err := record(ts, ids); err != nil {
					errs <- err
					return
				}
				got, err := client.LookupBatch(ids)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if !taint.SameSet(got[i], ts[i]) {
						errs <- fmt.Errorf("lookup of id %d returned wrong taint", ids[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := srv.Store().Stats().GlobalTaints; got != len(idOf) {
		t.Fatalf("store allocated %d ids for %d distinct blobs", got, len(idOf))
	}
	if len(idOf) != distinct {
		t.Fatalf("observed %d distinct blobs, want %d", len(idOf), distinct)
	}
}

// TestRegisterBatchChunksOversized registers a batch whose encoded
// payload exceeds maxFrame (1 MiB): the client must split it into
// several frames transparently instead of failing in writeFrame.
func TestRegisterBatchChunksOversized(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:7")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Long source names make each blob large, so a modest count of
	// distinct taints overflows one frame.
	build := func(tree *taint.Tree) ([]taint.Taint, int) {
		filler := strings.Repeat("x", 2048)
		var ts []taint.Taint
		total := 4
		for i := 0; total <= 3*maxFrame/2; i++ {
			tt := tree.NewSource(fmt.Sprintf("big-%d-%s", i, filler), "chunk:1")
			blob, err := taint.MarshalTaint(tt)
			if err != nil {
				t.Fatal(err)
			}
			total += 4 + len(blob)
			ts = append(ts, tt)
		}
		return ts, total
	}

	for _, tc := range []struct {
		name string
		dial func(*taint.Tree) Client
	}{
		{"Mux", func(tree *taint.Tree) Client {
			c, err := DialSim(n, "tm:7", tree)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
		{"StopAndWait", func(tree *taint.Tree) Client {
			conn, err := n.Dial("tm:7")
			if err != nil {
				t.Fatal(err)
			}
			return NewStopAndWaitClient(conn, tree)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tree := taint.NewTree()
			client := tc.dial(tree)
			defer client.Close()
			ts, total := build(tree)
			if total <= maxFrame {
				t.Fatalf("test batch encodes to %d bytes, need > %d", total, maxFrame)
			}
			ids, err := client.RegisterBatch(ts)
			if err != nil {
				t.Fatalf("oversized batch: %v", err)
			}
			seen := make(map[uint32]bool)
			for i, id := range ids {
				if id == 0 || seen[id] {
					t.Fatalf("id[%d] = %d (zero or duplicate)", i, id)
				}
				seen[id] = true
			}
			// Round-trip through a fresh client to prove the server got
			// every blob intact.
			checkTree := taint.NewTree()
			check, err := DialSim(n, "tm:7", checkTree)
			if err != nil {
				t.Fatal(err)
			}
			defer check.Close()
			got, err := check.LookupBatch(ids)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if !taint.SameSet(got[i], ts[i]) {
					t.Fatalf("taint %d did not survive the chunked round trip", i)
				}
			}
		})
	}
}

// TestSplitIDChunks covers the id-side chunker without paying for a
// quarter-million registrations.
func TestSplitIDChunks(t *testing.T) {
	ids := make([]uint32, maxIDsPerFrame*2+17)
	for i := range ids {
		ids[i] = uint32(i + 1)
	}
	chunks := splitIDChunks(ids)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	var back []uint32
	for _, c := range chunks {
		if len(c) > maxIDsPerFrame {
			t.Fatalf("chunk of %d ids exceeds frame limit", len(c))
		}
		back = append(back, c...)
	}
	if len(back) != len(ids) {
		t.Fatalf("chunks cover %d of %d ids", len(back), len(ids))
	}
	for i := range back {
		if back[i] != ids[i] {
			t.Fatalf("id %d reordered", i)
		}
	}
}

// TestStopAndWaitClientAgainstServer pins the legacy untagged ops
// against the rebuilt server: same semantics, same error text, and the
// connection survives a server-side error.
func TestStopAndWaitClientAgainstServer(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:7")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tree := taint.NewTree()
	conn, err := n.Dial("tm:7")
	if err != nil {
		t.Fatal(err)
	}
	c := NewStopAndWaitClient(conn, tree)
	defer c.Close()

	t1 := tree.NewSource("legacy", "n1:1")
	id, err := c.Register(t1)
	if err != nil || id == 0 {
		t.Fatalf("register = %d, %v", id, err)
	}
	if _, err := c.Lookup(9999); err == nil || !strings.Contains(err.Error(), "unknown global id: 9999") {
		t.Fatalf("unknown-id error = %v", err)
	}
	reader := taint.NewTree()
	conn2, err := n.Dial("tm:7")
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewStopAndWaitClient(conn2, reader)
	defer c2.Close()
	got, err := c2.Lookup(id)
	if err != nil || !taint.SameSet(got, t1) {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	st, err := c2.Stats()
	if err != nil || st.GlobalTaints != 1 {
		t.Fatalf("stats = %+v, %v", st, err)
	}
}

// TestMixedProtocolsOneConnection drives untagged and tagged frames
// interleaved on a single raw connection, checking the server keeps the
// two generations byte-for-byte straight.
func TestMixedProtocolsOneConnection(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:7")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := n.Dial("tm:7")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Untagged register of "blobA" -> id 1.
	if err := writeFrame(conn, opRegister, []byte("blobA")); err != nil {
		t.Fatal(err)
	}
	status, reply, err := readFrame(conn)
	if err != nil || status != statusOK || len(reply) != 4 {
		t.Fatalf("untagged register reply: %d %x %v", status, reply, err)
	}
	id := reply

	// Tagged lookup of that id, tag 77, on the same connection.
	var buf [13]byte
	buf[0] = opLookupTag
	buf[1], buf[2], buf[3], buf[4] = 0, 0, 0, 77
	buf[5], buf[6], buf[7], buf[8] = 0, 0, 0, 4
	copy(buf[9:], id)
	if _, err := conn.Write(buf[:]); err != nil {
		t.Fatal(err)
	}
	var hdr [9]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	if hdr[0] != statusTaggedOK || hdr[4] != 77 || hdr[8] != 5 {
		t.Fatalf("tagged header = %x", hdr)
	}
	payload := make([]byte, 5)
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatal(err)
	}
	if string(payload) != "blobA" {
		t.Fatalf("tagged lookup payload = %q", payload)
	}

	// And an untagged stats after the tagged exchange.
	if err := writeFrame(conn, opStats, nil); err != nil {
		t.Fatal(err)
	}
	status, reply, err = readFrame(conn)
	if err != nil || status != statusOK || len(reply) != 24 {
		t.Fatalf("untagged stats reply: %d %x %v", status, reply, err)
	}
}

// TestRegisterCoalescing floods one RemoteClient with concurrent
// single-taint Registers of distinct taints. The writer goroutine
// folds simultaneous 'r' frames into one tagged batch frame and the
// demultiplexer fans the bare id-list reply back out to the member
// calls, so this test covers the coalescing slicing that RegisterBatch
// (which builds its own batches) never reaches. Distinct sources keep
// the singleflight table and the memo cache out of the way.
func TestRegisterCoalescing(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:9")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tree := taint.NewTree()
	client, err := DialSim(n, "tm:9", tree)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const goroutines = 16
	const perG = 50
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	ids := make([][]uint32, goroutines)
	taints := make([][]taint.Taint, goroutines)
	for g := 0; g < goroutines; g++ {
		taints[g] = make([]taint.Taint, perG)
		ids[g] = make([]uint32, perG)
		for i := range taints[g] {
			taints[g][i] = tree.NewSource(
				fmt.Sprintf("coalesce-%d-%d", g, i), "burst:1")
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i, tt := range taints[g] {
				id, err := client.Register(tt)
				if err != nil {
					errs <- err
					return
				}
				ids[g][i] = id
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	seen := make(map[uint32]bool)
	for g := range ids {
		for i, id := range ids[g] {
			if id == 0 {
				t.Fatalf("goroutine %d taint %d got id 0", g, i)
			}
			if seen[id] {
				t.Fatalf("id %d assigned to two distinct taints", id)
			}
			seen[id] = true
			got, err := client.Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			if !taint.SameSet(got, taints[g][i]) {
				t.Fatalf("lookup of id %d returned wrong taint", id)
			}
		}
	}
	if got := srv.Store().Stats().GlobalTaints; got != goroutines*perG {
		t.Fatalf("store allocated %d ids, want %d", got, goroutines*perG)
	}
}
