package taintmap

import (
	"errors"
	"testing"
	"time"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

// TestCallDeadlineExpired: a deadline already in the past fails
// immediately with ErrDeadlineExceeded, before anything is sent.
func TestCallDeadlineExpired(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:7")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := DialSim(n, "tm:7", taint.NewTree())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.callDeadline(opStatsTag, nil, time.Now().Add(-time.Second)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline = %v, want ErrDeadlineExceeded", err)
	}
}

// TestCallDeadlineStalledServer is the gray-failure contract of the
// per-call deadline: a lookup against a stalled (alive but silent)
// server returns ErrDeadlineExceeded at the deadline instead of
// hanging, the connection survives, and once the server thaws the same
// connection serves calls again — the late reply is discarded, not
// misdelivered.
func TestCallDeadlineStalledServer(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:7")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	seedTree := taint.NewTree()
	seed, err := DialSim(n, "tm:7", seedTree)
	if err != nil {
		t.Fatal(err)
	}
	id, err := seed.Register(seedTree.NewSource("stall-probe", "h:1"))
	if err != nil {
		t.Fatal(err)
	}
	seed.Close()

	rc, err := DialSim(n, "tm:7", taint.NewTree())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	n.SetHostStall("tm", true)
	start := time.Now()
	_, err = rc.lookupDeadline(id, time.Now().Add(50*time.Millisecond))
	took := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("lookup under stall = %v, want ErrDeadlineExceeded", err)
	}
	if took > 2*time.Second {
		t.Fatalf("deadline fired after %v, want ~50ms", took)
	}
	// ErrDeadlineExceeded must NOT count as a connection failure.
	if isConnErr(err) {
		t.Fatalf("ErrDeadlineExceeded classified as a connection error")
	}

	n.SetHostStall("tm", false)
	got, err := rc.Lookup(id)
	if err != nil {
		t.Fatalf("lookup after thaw on same connection: %v", err)
	}
	if got.Empty() {
		t.Fatalf("lookup after thaw returned empty taint")
	}
}

// TestCallDeadlineBatch: the batch path honors the deadline too.
func TestCallDeadlineBatch(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:7")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	seedTree := taint.NewTree()
	seed, err := DialSim(n, "tm:7", seedTree)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := seed.RegisterBatch([]taint.Taint{
		seedTree.NewSource("batch-a", "h:1"),
		seedTree.NewSource("batch-b", "h:1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	seed.Close()

	rc, err := DialSim(n, "tm:7", taint.NewTree())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	n.SetHostStall("tm", true)
	defer n.SetHostStall("tm", false)
	if _, err := rc.lookupBatchDeadline(ids, time.Now().Add(50*time.Millisecond)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("batch lookup under stall = %v, want ErrDeadlineExceeded", err)
	}
}
