package taintmap

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzConn feeds a fixed byte stream to ServeConn and captures
// everything the server writes back.
type fuzzConn struct {
	r *bytes.Reader
	w bytes.Buffer
}

func (c *fuzzConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c *fuzzConn) Write(p []byte) (int, error) { return c.w.Write(p) }

// taggedReq builds one tagged request frame.
func taggedReq(op byte, tag uint32, payload []byte) []byte {
	b := []byte{op}
	b = binary.BigEndian.AppendUint32(b, tag)
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	return append(b, payload...)
}

// untaggedReq builds one legacy request frame.
func untaggedReq(op byte, payload []byte) []byte {
	b := []byte{op}
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	return append(b, payload...)
}

// FuzzServeConn feeds arbitrary byte streams to the protocol parser —
// mixing well-formed untagged and tagged frames, truncations and
// trailing garbage — and asserts the server never panics and that
// everything it writes back is a stream of complete, well-formed
// response frames (the flush-on-exit guarantee).
func FuzzServeConn(f *testing.F) {
	f.Add(untaggedReq(opRegister, []byte("blob")))
	f.Add(untaggedReq(opLookup, []byte{0, 0, 0, 1}))
	f.Add(untaggedReq(opStats, nil))
	f.Add(taggedReq(opRegisterTag, 7, []byte("blob")))
	f.Add(taggedReq(opLookupBatchTag, 9, []byte{0, 0, 0, 1, 0, 0, 0, 2}))
	f.Add(append(untaggedReq(opRegister, []byte("a")), taggedReq(opLookupTag, 3, []byte{0, 0, 0, 1})...))
	// Truncated frames: header cut short, payload cut short.
	f.Add([]byte{opRegister, 0, 0})
	f.Add([]byte{opRegisterTag, 0, 0, 0, 1, 0, 0, 0, 9, 'x'})
	// Trailing garbage after a valid frame.
	f.Add(append(untaggedReq(opStats, nil), 0xDE, 0xAD, 0xBE, 0xEF))
	// Oversized length field and unknown op.
	f.Add([]byte{opLookup, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(untaggedReq('Z', []byte("???")))
	f.Add(untaggedReq(opRegisterBatch, []byte{0, 0, 0, 2, 0, 0, 0, 1, 'a'}))

	f.Fuzz(func(t *testing.T, data []byte) {
		store := NewStore()
		conn := &fuzzConn{r: bytes.NewReader(data)}
		_ = ServeConn(store, conn) // must terminate without panicking

		// Every byte written must belong to a complete response frame.
		out := conn.w.Bytes()
		for len(out) > 0 {
			status := out[0]
			var hdrLen int
			switch status {
			case statusOK, statusErr:
				hdrLen = 5
			case statusTaggedOK, statusTaggedErr:
				hdrLen = 9
			default:
				t.Fatalf("response starts with status %d", status)
			}
			if len(out) < hdrLen {
				t.Fatalf("truncated response header: % x", out)
			}
			n := binary.BigEndian.Uint32(out[hdrLen-4 : hdrLen])
			if n > maxReplyFrame {
				t.Fatalf("response frame of %d bytes", n)
			}
			if len(out) < hdrLen+int(n) {
				t.Fatalf("truncated response payload: want %d, have %d", n, len(out)-hdrLen)
			}
			out = out[hdrLen+int(n):]
		}
	})
}

// FuzzParseBlobList throws random bytes at the blob-list parser: it
// must never panic, and anything it accepts must re-encode to exactly
// the input (the encoding is canonical and trailing garbage is
// rejected).
func FuzzParseBlobList(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add(appendBlobList(nil, [][]byte{[]byte("a"), []byte("bc"), nil}))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 5, 'x'})                   // truncated entry
	f.Add(append(appendBlobList(nil, [][]byte{[]byte("a")}), 0)) // trailing garbage
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})            // absurd count
	f.Add([]byte{0, 0})                                          // short header

	f.Fuzz(func(t *testing.T, data []byte) {
		blobs, err := parseBlobList(data)
		if err != nil {
			return
		}
		re := appendBlobList(nil, blobs)
		if !bytes.Equal(re, data) {
			t.Fatalf("parse/encode not canonical:\n in  % x\n out % x", data, re)
		}
		// The id-list parser shares the same hardening contract.
		if ids, err := parseIDList(data); err == nil {
			if !bytes.Equal(appendIDList(nil, ids), data) {
				t.Fatal("id list parse/encode not canonical")
			}
		}
	})
}
