package taintmap

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dista/internal/core/taint"
)

// grayOpts is the fast-failure tuning the gray-failure tests run the
// cluster client with: short call timeouts, tight backoff, an eager
// hedge and a generous budget, so a stalled replica costs milliseconds
// instead of the production-default seconds.
func grayOpts() ClusterOptions {
	return ClusterOptions{
		Resilient: ResilientOptions{
			CallTimeout:      200 * time.Millisecond,
			BackoffBase:      time.Millisecond,
			BackoffMax:       20 * time.Millisecond,
			BreakerThreshold: 2,
			JournalLimit:     1 << 15,
		},
		HedgeDelay:  5 * time.Millisecond,
		BudgetRate:  500,
		BudgetBurst: 1000,
	}
}

// stallSet picks which member hosts to stall: a subset that leaves
// every partition at least one healthy replica while stalling a replica
// of as many partitions as possible. The replica sets come from the
// consistent-hash ring (successors are hash-order, not part+1), so the
// choice is a small brute force over host subsets rather than a
// pattern.
func stallSet(r *Ring) []uint32 {
	parts := make([]uint32, 0, len(r.Members()))
	for _, m := range r.Members() {
		parts = append(parts, m.Part)
	}
	n := len(parts)
	best, bestScore := []uint32(nil), -1
	for mask := 1; mask < 1<<n; mask++ {
		stalled := make(map[uint32]bool)
		for i, p := range parts {
			if mask&(1<<i) != 0 {
				stalled[p] = true
			}
		}
		score := 0
		ok := true
		for _, p := range parts {
			healthy, hit := 0, 0
			for _, rep := range r.Replicas(p) {
				if stalled[rep] {
					hit++
				} else {
					healthy++
				}
			}
			if healthy == 0 {
				ok = false
				break
			}
			if hit > 0 {
				score++
			}
		}
		if !ok {
			continue
		}
		if score > bestScore {
			bestScore = score
			best = best[:0]
			for p := range stalled {
				best = append(best, p)
			}
		}
	}
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	return best
}

// TestStallSetCoversCluster sanity-checks the brute force on the ring
// the chaos test uses.
func TestStallSetCoversCluster(t *testing.T) {
	members := make([]Member, 4)
	for i := range members {
		members[i] = Member{Part: uint32(i), Addr: simMemberAddr(uint32(i))}
	}
	r, err := NewRing(1, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	set := stallSet(r)
	if len(set) == 0 {
		t.Fatal("stallSet found nothing to stall")
	}
	stalled := make(map[uint32]bool)
	for _, p := range set {
		stalled[p] = true
	}
	for _, m := range members {
		healthy := 0
		for _, rep := range r.Replicas(m.Part) {
			if !stalled[rep] {
				healthy++
			}
		}
		if healthy == 0 {
			t.Fatalf("partition %d left with no healthy replica by stall set %v", m.Part, set)
		}
	}
}

// TestHedgedLookupStalledReplica: with one of two replicas stalled
// (alive, accepting, never answering), every memo-cold lookup must
// still resolve fast — the hedge races the healthy replica after the
// hedge delay instead of waiting out the stalled one's full timeout.
func TestHedgedLookupStalledReplica(t *testing.T) {
	e := newClusterEnv(t, 2, 2)
	seedTree := taint.NewTree()
	seed, err := DialSimCluster(e.net, "seed:1", e.ring, seedTree, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const N = 48
	ts := make([]taint.Taint, N)
	for i := range ts {
		ts[i] = seedTree.NewSource(fmt.Sprintf("hedged-%d", i), "seed:1")
	}
	ids, err := seed.RegisterBatch(ts)
	if err != nil {
		t.Fatal(err)
	}
	seed.Close()

	c, err := DialSimCluster(e.net, "app:1", e.ring, taint.NewTree(), grayOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	e.net.SetHostStall("tm0", true)
	defer e.net.SetHostStall("tm0", false)

	start := time.Now()
	for i, id := range ids {
		one := time.Now()
		got, err := c.Lookup(id)
		if err != nil {
			t.Fatalf("lookup %d under stall: %v", i, err)
		}
		if got.Empty() {
			t.Fatalf("lookup %d returned empty taint", i)
		}
		if took := time.Since(one); took > 2*time.Second {
			t.Fatalf("lookup %d took %v under a single-replica stall", i, took)
		}
	}
	total := time.Since(start)
	// Sequential rotation would pay the 200ms call timeout for every
	// lookup that starts on the stalled replica (~half of 48 -> ~4.8s
	// minimum). The hedge must keep the whole sweep well under that.
	if total > 4*time.Second {
		t.Fatalf("48 lookups took %v with one stalled replica", total)
	}

	h := c.Health()
	if h.Hedges == 0 {
		t.Fatal("no hedges launched against a stalled replica")
	}
	if h.HedgeWins == 0 {
		t.Fatal("no lookup won by its hedge")
	}
}

// TestClusterRegisterOverloadedJournals: a shedding owner (admission
// gate saturated) must not fail registrations — they fall into that
// partition's journaled degraded mode, get provisional ids, and drain
// to real ids once the owner stops shedding. Other partitions are
// unaffected: degradation is partition-scoped.
func TestClusterRegisterOverloadedJournals(t *testing.T) {
	e := newClusterEnvOpts(t, 2, 2, WithAdmission(1, 0))
	tree := taint.NewTree()
	opt := grayOpts()
	c, err := DialSimCluster(e.net, "app:1", e.ring, tree, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find a taint owned by partition 0 and one owned by partition 1.
	byOwner := map[uint32]taint.Taint{}
	for i := 0; len(byOwner) < 2 && i < 256; i++ {
		tt := tree.NewSource(fmt.Sprintf("shedload-%d", i), "app:1")
		blob, err := taint.MarshalTaint(tt)
		if err != nil {
			t.Fatal(err)
		}
		owner := e.ring.OwnerOfBlob(blob)
		if _, dup := byOwner[owner]; !dup {
			byOwner[owner] = tt
		}
	}
	if len(byOwner) < 2 {
		t.Fatal("could not find taints for both partitions")
	}

	// Saturate partition 0's gate from the outside: its register traffic
	// sheds while partition 1 keeps serving.
	e.srvs[0].adm.admit()
	id0, err := c.Register(byOwner[0])
	if err != nil {
		t.Fatalf("register against shedding owner: %v", err)
	}
	if !IsProvisional(id0) {
		t.Fatalf("register against shedding owner returned real id %d, want provisional", id0)
	}
	if PartitionOf(id0) != 0 {
		t.Fatalf("provisional id carries partition %d, want 0", PartitionOf(id0))
	}
	// The provisional id resolves locally right away.
	if got, err := c.Lookup(id0); err != nil || got.Empty() {
		t.Fatalf("provisional lookup = %v, %v", got, err)
	}
	// The healthy partition is untouched by partition 0's brownout.
	id1, err := c.Register(byOwner[1])
	if err != nil {
		t.Fatalf("register to healthy partition: %v", err)
	}
	if IsProvisional(id1) {
		t.Fatalf("healthy partition handed out provisional id %d", id1)
	}

	// Stop shedding: the background drain must replay the journal and
	// remap the provisional id without a disconnect/reconnect cycle.
	e.srvs[0].adm.release()
	deadline := time.Now().Add(30 * time.Second)
	for {
		h := c.Healths()[0]
		if h.JournalLen == 0 && h.Drained > 0 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("journal never drained after the gate freed: %+v", h)
		}
		time.Sleep(time.Millisecond)
	}
	real0, err := c.Register(byOwner[0])
	if err != nil {
		t.Fatal(err)
	}
	if IsProvisional(real0) {
		t.Fatalf("taint still provisional (%d) after drain", real0)
	}
	// A fresh client resolves the drained id to identical bytes.
	check, err := DialSimCluster(e.net, "verify:1", e.ring, taint.NewTree(), ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	got, err := check.Lookup(real0)
	if err != nil {
		t.Fatal(err)
	}
	wantBlob, _ := taint.MarshalTaint(byOwner[0])
	gotBlob, err := taint.MarshalTaint(got)
	if err != nil || string(gotBlob) != string(wantBlob) {
		t.Fatalf("drained id %d resolved to different bytes (%v)", real0, err)
	}
}

// TestChaosGrayFailure is the acceptance scenario: a 4-member RF-2
// cluster where one replica of (nearly) every partition stalls — alive,
// accepting, absorbing requests, never answering — under the
// 8-goroutine mixed workload. Forward progress must continue through
// hedges and partition-scoped journaling, mid-stall lookups must stay
// bounded, and after the stall lifts every submitted taint must resolve
// to byte-identical content with no duplicate or lost ids.
func TestChaosGrayFailure(t *testing.T) {
	e := newClusterEnv(t, 4, 2)
	for _, node := range e.nodes {
		node.SetPeerTimeout(150 * time.Millisecond)
	}
	tree := taint.NewTree()
	c, err := DialSimCluster(e.net, "app:1", e.ring, tree, grayOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The lookup leg runs on its own client with a cold memo: registered
	// ids are warm in c's cache, and a memo hit would bypass the wire —
	// the whole point is to drive hedged reads through stalled replicas.
	lc, err := DialSimCluster(e.net, "reader:1", e.ring, taint.NewTree(), grayOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	stalls := stallSet(e.ring)
	if len(stalls) == 0 {
		t.Fatal("no stall set")
	}
	t.Logf("stalling members %v", stalls)

	const goroutines = 8
	const perG = 300

	var ops atomic.Int64
	var inStall atomic.Bool
	var latMu sync.Mutex
	var stallLats []time.Duration
	var pubMu sync.Mutex
	var pub []published
	submitted := make([][]taint.Taint, goroutines)
	gate := make(chan struct{})

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		submitted[g] = make([]taint.Taint, 0, perG)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i == perG/3 {
					<-gate
				}
				ops.Add(1)
				if i%10 == 9 {
					pubMu.Lock()
					var p published
					if len(pub) > 0 {
						p = pub[(g*2654435761+i)%len(pub)]
					}
					pubMu.Unlock()
					if p.id == 0 {
						continue
					}
					start := time.Now()
					got, err := lc.Lookup(p.id)
					if took := time.Since(start); inStall.Load() {
						latMu.Lock()
						stallLats = append(stallLats, took)
						latMu.Unlock()
					}
					if err != nil {
						if tolerableClusterLookup(err) || errors.Is(err, ErrDeadlineExceeded) {
							continue
						}
						errs <- fmt.Errorf("worker %d lookup %d: %w", g, p.id, err)
						return
					}
					blob, err := taint.MarshalTaint(got)
					if err != nil || string(blob) != p.blob {
						errs <- fmt.Errorf("worker %d: id %d resolved to wrong taint (%v)", g, p.id, err)
						return
					}
					continue
				}
				// Register leg: must never fail — reachable owners
				// register, stalled or shedding owners journal.
				tt := tree.NewSource(fmt.Sprintf("gray-%d-%d", g, i), "app:1")
				id, err := c.Register(tt)
				if err != nil {
					errs <- fmt.Errorf("worker %d register %d: %w", g, i, err)
					return
				}
				if id == 0 {
					errs <- fmt.Errorf("worker %d register %d: id 0", g, i)
					return
				}
				submitted[g] = append(submitted[g], tt)
				if !IsProvisional(id) {
					blob, err := taint.MarshalTaint(tt)
					if err != nil {
						errs <- err
						return
					}
					pubMu.Lock()
					pub = append(pub, published{id: id, blob: string(blob)})
					pubMu.Unlock()
				}
			}
		}(g)
	}

	// The gray-failure injector: wait for a healthy warmup, stall the
	// chosen replica of every partition, demand forward progress under
	// the stall, then lift it and wait for full recovery.
	go func() {
		for ops.Load() < 300 {
			time.Sleep(time.Millisecond)
		}
		inStall.Store(true)
		for _, p := range stalls {
			e.net.SetHostStall(fmt.Sprintf("tm%d", p), true)
		}
		close(gate)
		down := ops.Load()
		deadline := time.Now().Add(30 * time.Second)
		for ops.Load() < down+300 {
			if !time.Now().Before(deadline) {
				t.Errorf("no workload progress with members %v stalled", stalls)
				break
			}
			time.Sleep(time.Millisecond)
		}
		inStall.Store(false)
		for _, p := range stalls {
			e.net.SetHostStall(fmt.Sprintf("tm%d", p), false)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Settle: every member connected, nothing left journaled anywhere.
	deadline := time.Now().Add(30 * time.Second)
	for {
		all := true
		for part, h := range c.Healths() {
			if !h.Connected || h.Degraded || h.JournalLen != 0 {
				all = false
				if !time.Now().Before(deadline) {
					t.Fatalf("member %d still unhealthy after the stall lifted: %+v", part, h)
				}
			}
		}
		if all {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Mid-stall lookups must have been bounded: hedges (or instant
	// degraded fall-through) cap the tail far below the sequential
	// worst case of replicas x call timeout.
	latMu.Lock()
	lats := append([]time.Duration(nil), stallLats...)
	latMu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p99 := lats[len(lats)*99/100]
		if p99 > 2*time.Second {
			t.Fatalf("mid-stall lookup p99 = %v over %d lookups", p99, len(lats))
		}
		t.Logf("mid-stall lookups: %d, p99 %v", len(lats), p99)
	}

	h := lc.Health()
	t.Logf("reader hedges %d (wins %d), budget denied %d, repaired %d",
		h.Hedges, h.HedgeWins, h.BudgetDenied, h.Repaired)

	// Zero lost, zero wrong: every submitted taint re-registers to a
	// real id resolving byte-identically from a fresh client, one id
	// per blob, and the partitions together hold exactly the distinct
	// blobs.
	checkTree := taint.NewTree()
	check, err := DialSimCluster(e.net, "verify:1", e.ring, checkTree, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	idOf := make(map[string]uint32)
	total := 0
	for g := range submitted {
		for _, tt := range submitted[g] {
			total++
			id, err := c.Register(tt)
			if err != nil {
				t.Fatalf("post-chaos register: %v", err)
			}
			if id == 0 || IsProvisional(id) {
				t.Fatalf("taint still unresolved after the stall lifted: id %d", id)
			}
			blob, err := taint.MarshalTaint(tt)
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := idOf[string(blob)]; ok && prev != id {
				t.Fatalf("blob resolved to ids %d and %d", prev, id)
			}
			idOf[string(blob)] = id
			got, err := check.Lookup(id)
			if err != nil {
				t.Fatalf("fresh-client lookup of id %d: %v", id, err)
			}
			gotBlob, err := taint.MarshalTaint(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotBlob) != string(blob) {
				t.Fatalf("id %d resolved to different bytes after the chaos run", id)
			}
		}
	}
	if total != goroutines*(perG-perG/10) {
		t.Fatalf("submitted %d taints, want %d", total, goroutines*(perG-perG/10))
	}
	minted := 0
	for _, s := range e.stores {
		minted += s.Stats().GlobalTaints
	}
	if minted != len(idOf) {
		t.Fatalf("partitions minted %d ids for %d distinct blobs", minted, len(idOf))
	}
}
