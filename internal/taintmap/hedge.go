package taintmap

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// hedgeTracker is a lock-free latency histogram feeding the hedge
// delay: the cluster client observes every winning lookup's latency and
// hedges the next lookup when it has waited past the observed p99.
// Buckets are log-scale with 4 sub-buckets per octave (quantile error
// <= 25%, upper-bounded — a hedge fired slightly late costs latency,
// one fired slightly early costs a token, and over-reporting errs
// toward late). Observations and quantile reads are atomics only.
const (
	hedgeSubBits = 2 // sub-buckets per octave = 1<<hedgeSubBits
	hedgeBuckets = 128
	// hedgeWarmup is the observation count below which quantile reports
	// not-ready and the configured initial delay is used instead.
	hedgeWarmup = 32
)

type hedgeTracker struct {
	count   atomic.Int64
	buckets [hedgeBuckets]atomic.Int64
}

// hedgeBucket maps a microsecond value onto its histogram bucket.
func hedgeBucket(us uint64) int {
	const sub = 1 << hedgeSubBits
	if us < sub {
		return int(us) // 0..3 exact
	}
	k := bits.Len64(us) - 1 // us in [2^k, 2^k+1)
	i := sub + (k-hedgeSubBits)*sub + int((us>>(k-hedgeSubBits))-sub)
	if i >= hedgeBuckets {
		return hedgeBuckets - 1
	}
	return i
}

// hedgeBucketUpper is the exclusive upper bound of bucket i, in
// microseconds.
func hedgeBucketUpper(i int) uint64 {
	const sub = 1 << hedgeSubBits
	if i < sub {
		return uint64(i + 1)
	}
	i -= sub
	k := i/sub + hedgeSubBits
	m := uint64(i%sub) + sub
	return (m + 1) << (k - hedgeSubBits)
}

// observe records one successful call's latency.
func (h *hedgeTracker) observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	h.buckets[hedgeBucket(us)].Add(1)
	h.count.Add(1)
}

// quantile returns an upper bound on the q-quantile of the observed
// latencies, or ok=false until hedgeWarmup observations have landed.
func (h *hedgeTracker) quantile(q float64) (time.Duration, bool) {
	total := h.count.Load()
	if total < hedgeWarmup {
		return 0, false
	}
	want := int64(math.Ceil(q * float64(total)))
	if want < 1 {
		want = 1
	}
	if want > total {
		want = total
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= want {
			return time.Duration(hedgeBucketUpper(i)) * time.Microsecond, true
		}
	}
	return time.Duration(hedgeBucketUpper(hedgeBuckets-1)) * time.Microsecond, true
}
