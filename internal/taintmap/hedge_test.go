package taintmap

import (
	"testing"
	"time"
)

func TestHedgeBucketRoundTrip(t *testing.T) {
	// Every microsecond value must land in a bucket whose bounds contain
	// it: value < upper(bucket) and (bucket 0 or value >= upper(bucket-1)).
	values := []uint64{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 4095, 4096, 1 << 20, 1 << 40}
	for _, us := range values {
		i := hedgeBucket(us)
		if i < 0 || i >= hedgeBuckets {
			t.Fatalf("hedgeBucket(%d) = %d out of range", us, i)
		}
		if i < hedgeBuckets-1 && us >= hedgeBucketUpper(i) {
			t.Fatalf("hedgeBucket(%d) = %d but upper bound is %d", us, i, hedgeBucketUpper(i))
		}
		if i > 0 && us < hedgeBucketUpper(i-1) {
			t.Fatalf("hedgeBucket(%d) = %d but previous upper bound is %d", us, i, hedgeBucketUpper(i-1))
		}
	}
}

func TestHedgeBucketMonotone(t *testing.T) {
	prev := -1
	for us := uint64(0); us < 1<<16; us += 7 {
		i := hedgeBucket(us)
		if i < prev {
			t.Fatalf("hedgeBucket not monotone at %d: %d < %d", us, i, prev)
		}
		prev = i
	}
	for i := 1; i < hedgeBuckets; i++ {
		if hedgeBucketUpper(i) <= hedgeBucketUpper(i-1) {
			t.Fatalf("hedgeBucketUpper not increasing at %d", i)
		}
	}
}

func TestHedgeQuantileWarmup(t *testing.T) {
	var h hedgeTracker
	for i := 0; i < hedgeWarmup-1; i++ {
		h.observe(time.Millisecond)
	}
	if _, ok := h.quantile(0.99); ok {
		t.Fatalf("quantile ready below warmup")
	}
	h.observe(time.Millisecond)
	if _, ok := h.quantile(0.99); !ok {
		t.Fatalf("quantile not ready at warmup")
	}
}

func TestHedgeQuantileUpperBound(t *testing.T) {
	var h hedgeTracker
	// 99 fast observations at 1ms, one slow at 100ms: p50 must report
	// near 1ms, p99.5 near 100ms — each as a bucket upper bound, so at
	// most 25% above the true value.
	for i := 0; i < 99; i++ {
		h.observe(time.Millisecond)
	}
	h.observe(100 * time.Millisecond)

	p50, ok := h.quantile(0.50)
	if !ok {
		t.Fatalf("quantile not ready")
	}
	if p50 < time.Millisecond || p50 > time.Millisecond*5/4 {
		t.Fatalf("p50 = %v, want within 25%% above 1ms", p50)
	}
	p995, _ := h.quantile(0.995)
	if p995 < 100*time.Millisecond || p995 > 100*time.Millisecond*5/4 {
		t.Fatalf("p99.5 = %v, want within 25%% above 100ms", p995)
	}
	if p50 > p995 {
		t.Fatalf("quantiles not monotone: p50 %v > p99.5 %v", p50, p995)
	}
}
