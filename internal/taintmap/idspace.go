package taintmap

import "fmt"

// Global-ID bit layout for the partitioned Taint Map.
//
// A Global ID is 32 bits, carved into three fields that may never
// overlap (the distavet idbits analyzer proves it statically):
//
//	bit  31      — provisionalBit (PR 3): set on ids minted by a
//	               degraded client's local store, never by a server.
//	bits 27..30  — partition index: which cluster partition minted the
//	               id. A standalone server is partition 0, so every
//	               pre-cluster id remains valid and routable.
//	bits 0..26   — per-partition sequence, allocated densely from 1.
//
// Embedding the partition in the id makes lookup routing stateless —
// any client can tell from the id alone which partition owns it and
// which replicas may hold it — and makes id allocation coordination-free
// across servers: no partition can ever mint an id another partition
// already owns. The cost is capacity: 2^27-1 (~134M) distinct
// cross-node taints per partition instead of 2^31 for the whole map.
//
// Provisional ids compose both schemes: a degraded cluster client mints
// provisionalBit | partitionBase | seq from the per-partition local
// journal store, so even provisional ids route to the member whose
// journal holds them.
const (
	// partitionBits is how many id bits address partitions; MaxPartitions
	// servers can form one logical Taint Map.
	partitionBits = 4
	// partitionShift places the partition field directly below the
	// provisional bit.
	partitionShift = 31 - partitionBits
	// partitionMask selects the partition field.
	partitionMask uint32 = ((1 << partitionBits) - 1) << partitionShift
	// seqMask selects the per-partition sequence field.
	seqMask uint32 = (1 << partitionShift) - 1

	// MaxPartitions is the cluster size limit imposed by the id layout.
	MaxPartitions = 1 << partitionBits
)

// PartitionOf extracts the partition index that minted id. Provisional
// ids report the partition of the member whose journal minted them.
func PartitionOf(id uint32) uint32 {
	return (id &^ provisionalBit & partitionMask) >> partitionShift
}

// SeqOf extracts the per-partition sequence number of id.
func SeqOf(id uint32) uint32 { return id & seqMask }

// partitionBase returns the id-space base of a partition: every id the
// partition mints is partitionBase(part) | seq.
func partitionBase(part uint32) uint32 { return part << partitionShift }

// checkPartition validates a partition index against the id layout.
func checkPartition(part uint32) error {
	if part >= MaxPartitions {
		return fmt.Errorf("taintmap: partition %d out of range (max %d)", part, MaxPartitions-1)
	}
	return nil
}
