package taintmap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dista/internal/core/taint"
)

// RemoteClient talks to a Taint Map server over a reliable stream (a
// netsim conn or a real TCP connection) using the tagged, pipelined
// protocol: every request carries a tag, a demultiplexing goroutine
// routes each tagged response to its waiting caller, and so any number
// of goroutines share one connection with their requests in flight
// concurrently instead of serialized behind a stop-and-wait mutex.
//
// Two further layers keep concurrent traffic off the wire entirely:
// a singleflight table collapses simultaneous registrations of the
// same taint blob into one request, and the id -> taint memo is read
// under an RWMutex so warm lookups never serialize.
type RemoteClient struct {
	conn io.ReadWriteCloser
	tree *taint.Tree
	memo *cache

	// timeout bounds each call's wait for a response. It is enforced
	// out-of-band: a watchdog goroutine scans the pending table at
	// timeout/4 granularity and declares the whole connection wedged
	// (ErrCallTimeout) when any call has waited longer than timeout.
	// The per-call cost is one time.Now() on the wire path — no timer
	// churn, no extra select cases — so the deadline-bearing client is
	// as fast as the bare one. Zero disables enforcement entirely.
	timeout time.Duration

	bw      *bufio.Writer // owned by the writer goroutine
	writeCh chan muxWrite

	nextTag atomic.Uint32

	pmu     sync.Mutex
	pending map[uint32]pendingCall
	// regBatch maps the tag of a writer-coalesced register batch to the
	// member tags whose single-register requests it absorbed; the demux
	// goroutine fans the id-list reply back out to the members.
	regBatch map[uint32][]uint32
	broken   error // set once the connection is unusable

	done chan struct{} // closed when the demux goroutine exits

	closeOnce sync.Once
	closeErr  error

	sfMu sync.Mutex
	sf   map[string]*regFlight
}

var _ Client = (*RemoteClient)(nil)

// muxReply is one tagged response routed to its caller.
type muxReply struct {
	status  byte
	payload []byte
}

// pendingCall is one outstanding tagged request: the channel its caller
// waits on and, when a per-call deadline is configured, the time the
// request was issued (zero otherwise — the watchdog never runs then).
type pendingCall struct {
	ch chan muxReply
	at time.Time
}

// muxWrite is one queued request frame handed to the writer goroutine.
type muxWrite struct {
	op      byte
	tag     uint32
	payload []byte
}

// regFlight is one in-flight registration shared by every goroutine
// registering the same blob (singleflight).
type regFlight struct {
	done chan struct{}
	id   uint32
	err  error
}

// ErrClientClosed reports use of a RemoteClient whose connection is
// gone — closed by the caller or lost to a transport error. Every call
// pending at the moment of failure and every call issued afterwards
// fails with an error matching it under errors.Is, so wrappers like
// ResilientClient can tell "the connection died" apart from "the server
// rejected this request".
var ErrClientClosed = errors.New("taintmap: client closed")

// ErrCallTimeout reports a call that exceeded the client's per-call
// deadline. The connection is presumed wedged (stalled peer, silent
// drop): the caller should tear the client down and reconnect.
var ErrCallTimeout = errors.New("taintmap: call timed out")

// ErrDeadlineExceeded reports a call abandoned at its caller-supplied
// deadline (see callDeadline). Unlike ErrCallTimeout it says nothing
// about the connection — the request may still complete server-side and
// its reply is silently discarded — so the resilience layer does NOT
// treat it as a connection failure.
var ErrDeadlineExceeded = errors.New("taintmap: call deadline exceeded")

// replyChans recycles the one-shot reply channels used by call: each
// channel carries exactly one response and comes back empty, so reuse
// is safe and saves an allocation per request. Channels are NOT
// returned on failure paths — a dying demux goroutine closes pending
// channels, and a closed channel must never re-enter the pool.
var replyChans = sync.Pool{
	New: func() any { return make(chan muxReply, 1) },
}

// NewRemoteClient wraps an established connection to a Taint Map
// server and starts the response demultiplexer.
func NewRemoteClient(conn io.ReadWriteCloser, tree *taint.Tree) *RemoteClient {
	return newRemoteClientWith(conn, tree, &cache{}, 0)
}

// newRemoteClientWith is NewRemoteClient with an injected memo cache
// and per-call timeout. ResilientClient threads one cache through every
// connection epoch so taints resolved before a reconnect stay warm
// after it.
func newRemoteClientWith(conn io.ReadWriteCloser, tree *taint.Tree, memo *cache, timeout time.Duration) *RemoteClient {
	c := &RemoteClient{
		conn:     conn,
		tree:     tree,
		memo:     memo,
		timeout:  timeout,
		bw:       bufio.NewWriterSize(conn, 64<<10),
		writeCh:  make(chan muxWrite, 128),
		pending:  make(map[uint32]pendingCall),
		regBatch: make(map[uint32][]uint32),
		done:     make(chan struct{}),
	}
	go c.demux()
	go c.writer()
	if timeout > 0 {
		go c.watchdog()
	}
	return c
}

// watchdog enforces the per-call deadline out-of-band: every timeout/4
// it scans the pending table, and the moment any call has been waiting
// longer than timeout it declares the connection wedged — broken is set
// to an ErrCallTimeout-wrapping error and the connection is torn down,
// which fails every pending and future call with that error. Detection
// granularity is timeout/4, which is plenty for a liveness deadline;
// in exchange the wire path pays nothing per call.
func (c *RemoteClient) watchdog() {
	tick := c.timeout / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tk.C:
		}
		now := time.Now()
		wedged := false
		c.pmu.Lock()
		if c.broken == nil {
			for _, pc := range c.pending {
				if now.Sub(pc.at) > c.timeout {
					wedged = true
					break
				}
			}
			if wedged {
				c.broken = fmt.Errorf("%w: no response within %v", ErrCallTimeout, c.timeout)
			}
		}
		c.pmu.Unlock()
		if wedged {
			c.conn.Close() // demux observes the failure and sweeps pending
		}
	}
}

// muxLingerSpins bounds how many scheduler yields the writer spends
// waiting for more frames before flushing a non-empty buffer. A handful
// of yields (~1µs) is enough to let goroutines that just received
// coalesced replies enqueue their next request, which keeps the batch
// convoy alive; it is far below the cost of the write syscall it saves.
const muxLingerSpins = 16

// writer owns the outbound half of the connection: it drains queued
// request frames into the buffered writer and flushes only once the
// queue stays dry, so a burst of concurrent callers shares one write
// syscall (group commit) instead of paying one per request. When the
// queue momentarily runs dry the writer lingers for a few scheduler
// yields: callers woken by a coalesced reply batch need about that long
// to enqueue their next request, and folding those stragglers into the
// pending flush is what lets batches self-sustain instead of decaying
// back to one syscall per frame.
//
// The writer also coalesces at the *operation* level: single-register
// frames collected in one burst are rewritten as one batch-register
// frame (registration dominates the send path — every instrumented
// Write registers its taints — so bursts of registers are the common
// case). The server then parses one frame and answers with one id
// list, which the demux goroutine fans back out to the member tags
// recorded in regBatch. Lookups are not coalesced: the server may
// answer a batch lookup partially, which single-op callers are not
// prepared to re-request.
func (c *RemoteClient) writer() {
	var err error
	var regs []muxWrite // register frames folded into the next batch
	var regBytes int    // encoded blob-list size of regs
	var scratch []byte  // batch payload buffer, reused across batches
	var blobs [][]byte  // batch blob list, reused across batches

	// flushRegs rewrites the collected register frames: one goes out
	// verbatim, two or more become a batch-register frame whose tag maps
	// to the member tags.
	flushRegs := func() {
		if err != nil || len(regs) == 0 {
			regs = regs[:0]
			return
		}
		if len(regs) == 1 {
			err = writeTaggedFrame(c.bw, opRegisterTag, regs[0].tag, regs[0].payload)
			regs = regs[:0]
			regBytes = 0
			return
		}
		members := make([]uint32, len(regs))
		blobs = blobs[:0]
		for i := range regs {
			members[i] = regs[i].tag
			blobs = append(blobs, regs[i].payload)
		}
		btag := c.nextTag.Add(1)
		c.pmu.Lock()
		if c.broken == nil {
			c.regBatch[btag] = members
		}
		c.pmu.Unlock()
		scratch = appendBlobList(scratch[:0], blobs)
		err = writeTaggedFrame(c.bw, opRegisterBatchTag, btag, scratch)
		regs = regs[:0]
		regBytes = 0
	}
	// enqueue routes one request frame: registers accumulate (spilling
	// into a batch frame at the payload budget), everything else flushes
	// the pending registers first and goes out verbatim.
	enqueue := func(w muxWrite) {
		if err != nil {
			return
		}
		if w.op == opRegisterTag {
			if regBytes == 0 {
				regBytes = 4 // blob-list count prefix
			}
			if regBytes+4+len(w.payload) > maxFrame {
				flushRegs()
				regBytes = 4
			}
			regs = append(regs, w)
			regBytes += 4 + len(w.payload)
			return
		}
		flushRegs()
		if err == nil {
			err = writeTaggedFrame(c.bw, w.op, w.tag, w.payload)
		}
	}

	for {
		var w muxWrite
		select {
		case w = <-c.writeCh:
		case <-c.done:
			return
		}
		enqueue(w)
		spins := 0
	drain:
		for err == nil {
			select {
			case w = <-c.writeCh:
				enqueue(w)
				spins = 0
			default:
				if spins < muxLingerSpins {
					spins++
					runtime.Gosched()
					continue
				}
				flushRegs()
				if err == nil {
					err = c.bw.Flush()
				}
				break drain
			}
		}
		if err != nil {
			// Tear the connection down; the demux goroutine observes the
			// read error and fails every pending call. Keep draining the
			// queue so senders never block on a dead client.
			c.conn.Close()
			for {
				select {
				case <-c.writeCh:
				case <-c.done:
					return
				}
			}
		}
	}
}

// demux reads tagged responses and hands each to the caller waiting on
// its tag. On connection loss it fails every pending and future call.
func (c *RemoteClient) demux() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var err error
	var chans []chan muxReply // batch fan-out scratch, reused
loop:
	for {
		var hdr [9]byte
		if _, err = io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		status := hdr[0]
		tag := binary.BigEndian.Uint32(hdr[1:5])
		n := binary.BigEndian.Uint32(hdr[5:9])
		if status != statusTaggedOK && status != statusTaggedErr {
			err = fmt.Errorf("%w: response status %d", errProtocol, status)
			break
		}
		if n > maxReplyFrame {
			err = fmt.Errorf("%w: frame of %d bytes", errProtocol, n)
			break
		}
		payload := make([]byte, n)
		if _, err = io.ReadFull(br, payload); err != nil {
			break
		}
		c.pmu.Lock()
		ch := c.pending[tag].ch
		delete(c.pending, tag)
		var members []uint32
		if ch == nil {
			if members = c.regBatch[tag]; members != nil {
				// Validate before dequeuing the members: on a malformed
				// reply they stay in pending, so the exit sweep below
				// fails them instead of leaving their callers hanging.
				if status == statusTaggedOK && len(payload) != 4*len(members) {
					c.pmu.Unlock()
					err = fmt.Errorf("%w: batch register reply of %d bytes for %d members",
						errProtocol, len(payload), len(members))
					break loop
				}
				delete(c.regBatch, tag)
				chans = chans[:0]
				for _, mt := range members {
					chans = append(chans, c.pending[mt].ch)
					delete(c.pending, mt)
				}
			}
		}
		c.pmu.Unlock()
		switch {
		case ch != nil:
			ch <- muxReply{status: status, payload: payload}
		case members != nil:
			c.fanOut(chans, status, payload)
		}
	}
	c.pmu.Lock()
	if c.broken == nil {
		c.broken = fmt.Errorf("%w: connection lost: %v", ErrClientClosed, err)
	}
	for tag, pc := range c.pending {
		delete(c.pending, tag)
		close(pc.ch)
	}
	clear(c.regBatch)
	c.pmu.Unlock()
	close(c.done)
}

// fanOut distributes one batch-register reply to the member calls the
// writer coalesced: each member receives its own 4-byte id slice of the
// shared payload (read immediately by registerBlob, never retained).
// A server error fans out whole, so every member reports it.
// fanOut routes a coalesced batch-register reply to the member calls.
// On error status every member receives the whole error payload; on OK
// the payload is a bare id list (no count prefix — see appendIDList)
// and member i receives its own 4-byte slice. Length was validated by
// demux before the members were dequeued.
func (c *RemoteClient) fanOut(chans []chan muxReply, status byte, payload []byte) {
	if status != statusTaggedOK {
		for _, ch := range chans {
			if ch != nil {
				ch <- muxReply{status: status, payload: payload}
			}
		}
		return
	}
	for i, ch := range chans {
		if ch != nil {
			ch <- muxReply{status: status, payload: payload[4*i : 4*i+4]}
		}
	}
}

// call issues one tagged request and waits for its response.
func (c *RemoteClient) call(op byte, payload []byte) ([]byte, error) {
	if len(payload) > maxFrame {
		return nil, fmt.Errorf("taintmap: send request: %w: frame of %d bytes", errProtocol, len(payload))
	}
	ch := replyChans.Get().(chan muxReply)
	// The timestamp exists only when a deadline is configured; it is the
	// watchdog's input and the deadline's entire per-call cost.
	var at time.Time
	if c.timeout > 0 {
		at = time.Now()
	}
	c.pmu.Lock()
	if c.broken != nil {
		err := c.broken
		c.pmu.Unlock()
		return nil, err
	}
	tag := c.nextTag.Add(1)
	c.pending[tag] = pendingCall{ch: ch, at: at}
	c.pmu.Unlock()

	select {
	case c.writeCh <- muxWrite{op: op, tag: tag, payload: payload}:
	case <-c.done:
		c.pmu.Lock()
		err := c.broken
		delete(c.pending, tag)
		c.pmu.Unlock()
		return nil, err
	}

	reply, ok := <-ch
	return c.finishReply(ch, reply, ok)
}

// finishReply converts one received reply into the call result and
// recycles the channel. ok=false means the demux goroutine died and
// closed the channel (which must then never re-enter the pool).
func (c *RemoteClient) finishReply(ch chan muxReply, reply muxReply, ok bool) ([]byte, error) {
	if !ok {
		c.pmu.Lock()
		err := c.broken
		c.pmu.Unlock()
		return nil, err
	}
	replyChans.Put(ch)
	if reply.status != statusTaggedOK {
		return nil, serverErr(reply.payload)
	}
	return reply.payload, nil
}

// callDeadline is call with an absolute deadline enforced inline: when
// it passes before the reply arrives, the call withdraws its pending
// entry and returns ErrDeadlineExceeded — the connection stays up, the
// request stays in flight server-side, and its late reply is discarded
// by the demux goroutine. This is the hedged read's cancellation
// primitive: unlike the watchdog (which declares the whole connection
// wedged), an expired deadline here says only "this caller stopped
// waiting". A zero deadline means no inline deadline.
func (c *RemoteClient) callDeadline(op byte, payload []byte, deadline time.Time) ([]byte, error) {
	if deadline.IsZero() {
		return c.call(op, payload)
	}
	if len(payload) > maxFrame {
		return nil, fmt.Errorf("taintmap: send request: %w: frame of %d bytes", errProtocol, len(payload))
	}
	d := time.Until(deadline)
	if d <= 0 {
		return nil, fmt.Errorf("%w: deadline already passed", ErrDeadlineExceeded)
	}
	ch := replyChans.Get().(chan muxReply)
	var at time.Time
	if c.timeout > 0 {
		at = time.Now()
	}
	c.pmu.Lock()
	if c.broken != nil {
		err := c.broken
		c.pmu.Unlock()
		return nil, err
	}
	tag := c.nextTag.Add(1)
	c.pending[tag] = pendingCall{ch: ch, at: at}
	c.pmu.Unlock()

	timer := time.NewTimer(d)
	defer timer.Stop()

	select {
	case c.writeCh <- muxWrite{op: op, tag: tag, payload: payload}:
	case <-c.done:
		c.pmu.Lock()
		err := c.broken
		delete(c.pending, tag)
		c.pmu.Unlock()
		return nil, err
	case <-timer.C:
		// Never sent: withdraw the pending entry. The channel saw no
		// send and no close, so it may re-enter the pool.
		c.pmu.Lock()
		delete(c.pending, tag)
		c.pmu.Unlock()
		replyChans.Put(ch)
		return nil, fmt.Errorf("%w: request not sent within %v", ErrDeadlineExceeded, d)
	}

	select {
	case reply, ok := <-ch:
		return c.finishReply(ch, reply, ok)
	case <-timer.C:
		c.pmu.Lock()
		_, mine := c.pending[tag]
		if mine {
			delete(c.pending, tag)
		}
		c.pmu.Unlock()
		if !mine {
			// The reply raced the deadline: the demux already dequeued the
			// entry, so a send (buffered) or close is guaranteed — take it.
			reply, ok := <-ch
			return c.finishReply(ch, reply, ok)
		}
		replyChans.Put(ch)
		return nil, fmt.Errorf("%w: no response within %v", ErrDeadlineExceeded, d)
	}
}

// registerBlob resolves one blob to its Global ID with singleflight
// dedup: N goroutines registering the same blob issue one request.
func (c *RemoteClient) registerBlob(blob []byte) (uint32, error) {
	key := string(blob)
	c.sfMu.Lock()
	if f, ok := c.sf[key]; ok {
		c.sfMu.Unlock()
		<-f.done
		return f.id, f.err
	}
	f := &regFlight{done: make(chan struct{})}
	if c.sf == nil {
		c.sf = make(map[string]*regFlight)
	}
	c.sf[key] = f
	c.sfMu.Unlock()

	reply, err := c.call(opRegisterTag, blob)
	switch {
	case err != nil:
		f.err = err
	case len(reply) != 4:
		f.err = fmt.Errorf("taintmap: register reply of %d bytes", len(reply))
	default:
		f.id = binary.BigEndian.Uint32(reply)
	}
	c.sfMu.Lock()
	delete(c.sf, key)
	c.sfMu.Unlock()
	close(f.done)
	return f.id, f.err
}

// Register implements Client.
func (c *RemoteClient) Register(t taint.Taint) (uint32, error) {
	if t.Empty() {
		return 0, nil
	}
	if id := t.GlobalID(); id != 0 {
		return id, nil
	}
	blob, err := taint.MarshalTaint(t)
	if err != nil {
		return 0, err
	}
	return c.registerMarshaled(t, blob)
}

// registerMarshaled is the back half of Register for callers that
// already serialized t (the cluster client marshals first to route by
// content hash, and must not pay the marshal twice).
func (c *RemoteClient) registerMarshaled(t taint.Taint, blob []byte) (uint32, error) {
	id, err := c.registerBlob(blob)
	if err != nil {
		return 0, err
	}
	t.SetGlobalID(id)
	c.memo.put(id, t)
	return id, nil
}

// registerBlobs pushes pre-marshaled blobs through the batch wire op —
// chunked transparently — returning the parallel id slice. The back
// half shared by RegisterBatch and the cluster client's per-partition
// batches.
func (c *RemoteClient) registerBlobs(blobs [][]byte) ([]uint32, error) {
	chunks, err := splitBlobChunks(blobs)
	if err != nil {
		return nil, err
	}
	ids := make([]uint32, 0, len(blobs))
	for _, chunk := range chunks {
		reply, err := c.call(opRegisterBatchTag, appendBlobList(nil, chunk))
		if err != nil {
			return nil, err
		}
		got, err := parseIDList(reply)
		if err != nil || len(got) != len(chunk) {
			return nil, fmt.Errorf("taintmap: register batch reply of %d bytes", len(reply))
		}
		ids = append(ids, got...)
	}
	return ids, nil
}

// Lookup implements Client.
func (c *RemoteClient) Lookup(id uint32) (taint.Taint, error) {
	return c.lookupDeadline(id, time.Time{})
}

// lookupDeadline is Lookup bounded by an absolute deadline (zero = no
// deadline), the per-member leg of the cluster client's hedged reads.
func (c *RemoteClient) lookupDeadline(id uint32, deadline time.Time) (taint.Taint, error) {
	if id == 0 {
		return taint.Taint{}, nil
	}
	if t, ok := c.memo.get(id); ok {
		return t, nil
	}
	var idBuf [4]byte
	binary.BigEndian.PutUint32(idBuf[:], id)
	blob, err := c.callDeadline(opLookupTag, idBuf[:], deadline)
	if err != nil {
		return taint.Taint{}, err
	}
	t, err := c.tree.UnmarshalTaint(blob)
	if err != nil {
		return taint.Taint{}, err
	}
	t.SetGlobalID(id)
	c.memo.put(id, t)
	return t, nil
}

// RegisterBatch implements Client: all unregistered distinct taints go
// to the server in one tagged round trip — or several, transparently,
// when the encoded batch would overflow the frame limit.
func (c *RemoteClient) RegisterBatch(ts []taint.Taint) ([]uint32, error) {
	ids, pending, posOf := collectRegister(ts)
	if len(pending) == 0 {
		return ids, nil
	}
	blobs, err := marshalAll(pending)
	if err != nil {
		return nil, err
	}
	fresh, err := c.registerBlobs(blobs)
	if err != nil {
		return nil, err
	}
	adoptFresh(c.memo, ids, fresh, pending, posOf)
	return ids, nil
}

// LookupBatch implements Client: all memo misses go to the server in
// one tagged round trip — chunked when the id list overflows a frame,
// and re-requesting the tail when the server answers with a partial
// blob list to respect the reply frame budget.
func (c *RemoteClient) LookupBatch(ids []uint32) ([]taint.Taint, error) {
	return c.lookupBatchDeadline(ids, time.Time{})
}

// lookupBatchDeadline is LookupBatch bounded by an absolute deadline
// (zero = no deadline) covering every chunk round trip.
func (c *RemoteClient) lookupBatchDeadline(ids []uint32, deadline time.Time) ([]taint.Taint, error) {
	ts, missing := c.memo.splitBatch(ids)
	if len(missing) == 0 {
		return ts, nil
	}
	blobs := make([][]byte, 0, len(missing))
	for _, chunk := range splitIDChunks(missing) {
		for len(chunk) > 0 {
			reply, err := c.callDeadline(opLookupBatchTag, appendIDList(nil, chunk), deadline)
			if err != nil {
				return nil, err
			}
			got, err := parseBlobList(reply)
			if err != nil {
				return nil, err
			}
			if len(got) == 0 || len(got) > len(chunk) {
				return nil, fmt.Errorf("taintmap: lookup batch returned %d of %d blobs", len(got), len(chunk))
			}
			blobs = append(blobs, got...)
			chunk = chunk[len(got):]
		}
	}
	if err := adoptBlobs(c.tree, c.memo, ts, ids, missing, blobs); err != nil {
		return nil, err
	}
	return ts, nil
}

// Stats fetches the server-side counters.
func (c *RemoteClient) Stats() (Stats, error) {
	reply, err := c.call(opStatsTag, nil)
	if err != nil {
		return Stats{}, err
	}
	if len(reply) != 24 {
		return Stats{}, fmt.Errorf("taintmap: stats reply of %d bytes", len(reply))
	}
	return Stats{
		GlobalTaints:  int(binary.BigEndian.Uint64(reply[0:8])),
		Registrations: int64(binary.BigEndian.Uint64(reply[8:16])),
		Lookups:       int64(binary.BigEndian.Uint64(reply[16:24])),
	}, nil
}

// Close implements Client: it tears down the connection and waits for
// the demux goroutine to drain, failing any in-flight calls. Close is
// idempotent — second and later calls return the first call's result
// without touching the connection again.
func (c *RemoteClient) Close() error {
	c.closeOnce.Do(func() {
		c.pmu.Lock()
		if c.broken == nil {
			c.broken = ErrClientClosed
		}
		c.pmu.Unlock()
		c.closeErr = c.conn.Close()
		<-c.done
	})
	return c.closeErr
}
