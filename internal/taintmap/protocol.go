package taintmap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Wire protocol: length-prefixed frames over any reliable stream, in
// two generations served side by side on the same connection.
//
// Untagged (legacy, stop-and-wait):
//
//	request:  op byte | uint32 payloadLen | payload
//	response: status byte | uint32 payloadLen | payload
//
// ops: 'R' register (payload = taint blob, reply = 4-byte id),
//      'L' lookup   (payload = 4-byte id, reply = taint blob),
//      'B' register batch (payload = blob list, reply = 4-byte id per blob),
//      'M' lookup batch   (payload = 4-byte id per entry, reply = blob list),
//      'S' stats    (payload empty, reply = 3x uint64).
//
// Tagged (pipelined): the lowercase counterparts 'r','l','b','m','s'
// carry a client-chosen tag so many requests can be in flight on one
// connection; the response echoes the tag, letting a demultiplexing
// client match replies to concurrent callers in arrival order rather
// than issue order.
//
//	request:  op byte | uint32 tag | uint32 payloadLen | payload
//	response: status byte | uint32 tag | uint32 payloadLen | payload
//
// Tagged responses use distinct status bytes (2 OK / 3 error) so the
// two generations can never be confused on the wire. The server answers
// requests of one connection in order, which for tagged traffic lets it
// coalesce many small responses into one buffered write.
//
// One semantic refinement over the untagged generation: a tagged lookup
// batch ('m') may return FEWER blobs than requested — always at least
// one — when the full reply would overflow the frame budget; the client
// transparently re-requests the tail. The untagged 'M' keeps its
// historic all-or-nothing behaviour.
//
// A blob list is uint32 count followed by count (uint32 len | bytes)
// entries. The batch ops let a node resolve every distinct taint of a
// message in one round trip instead of one per taint (§III-D's Taint
// Map traffic, amortized over runs).

const (
	opRegister      = 'R'
	opLookup        = 'L'
	opRegisterBatch = 'B'
	opLookupBatch   = 'M'
	opStats         = 'S'

	// Cluster ops (PR 6), answered only by servers running with a
	// ClusterNode; a standalone server rejects them with an error
	// response, never a dropped connection.
	//
	//	'G' ring     — payload empty, reply = ring snapshot encoding
	//	'J' join     — payload = member encoding, reply = the new ring;
	//	               the receiving node adds the member and gossips the
	//	               join to its peers (idempotent, so gossip converges)
	//	'P' replicate — payload = entry list (id + blob per entry), the
	//	               owner's synchronous push to its successors before
	//	               acking a fresh registration; reply empty
	//	'W' repair   — same payload as replicate: a client that observed a
	//	               replica missing ids it resolved elsewhere pushes the
	//	               entries back (read-repair); reply empty
	opRing      = 'G'
	opJoin      = 'J'
	opReplicate = 'P'
	opRepair    = 'W'

	opRegisterTag      = 'r'
	opLookupTag        = 'l'
	opRegisterBatchTag = 'b'
	opLookupBatchTag   = 'm'
	opStatsTag         = 's'
	opRingTag          = 'g'
	opJoinTag          = 'j'
	opReplicateTag     = 'p'
	opRepairTag        = 'w'

	statusOK        = 0
	statusErr       = 1
	statusTaggedOK  = 2
	statusTaggedErr = 3
)

// maxFrame bounds payload sizes to keep a corrupted peer from forcing a
// huge allocation.
const maxFrame = 1 << 20

// maxIDsPerFrame is how many 4-byte ids fit one frame; the clients
// chunk larger id batches transparently.
const maxIDsPerFrame = maxFrame / 4

// maxReplyFrame is the response-side read bound. It exceeds maxFrame by
// a small slack so a tagged batch-lookup reply carrying one maximum-size
// blob (plus the count and length prefixes) still fits.
const maxReplyFrame = maxFrame + 16

// errProtocol reports a malformed frame.
var errProtocol = errors.New("taintmap: protocol error")

// taggedBase maps a tagged op to its untagged ancestor; ok is false for
// anything that is not a tagged op.
func taggedBase(op byte) (base byte, ok bool) {
	switch op {
	case opRegisterTag:
		return opRegister, true
	case opLookupTag:
		return opLookup, true
	case opRegisterBatchTag:
		return opRegisterBatch, true
	case opLookupBatchTag:
		return opLookupBatch, true
	case opStatsTag:
		return opStats, true
	case opRingTag:
		return opRing, true
	case opJoinTag:
		return opJoin, true
	case opReplicateTag:
		return opReplicate, true
	case opRepairTag:
		return opRepair, true
	}
	return op, false
}

// Entry lists carry id->blob pairs for replication and read-repair:
// uint32 count, then per entry uint32 id | uint32 blobLen | blob.

// appendEntry appends one id+blob entry (countless form; the caller
// prepends the count with beginEntries/finishEntries or appendEntries).
func appendEntry(dst []byte, id uint32, blob []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, id)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(blob)))
	return append(dst, blob...)
}

// appendEntries encodes a parallel ids/blobs pair as an entry list.
func appendEntries(dst []byte, ids []uint32, blobs [][]byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ids)))
	for i, id := range ids {
		dst = appendEntry(dst, id, blobs[i])
	}
	return dst
}

// forEachEntry decodes an entry list, calling fn per entry (blob
// aliases p). It validates every length and rejects trailing bytes,
// and returns the entry count.
func forEachEntry(p []byte, fn func(id uint32, blob []byte) error) (int, error) {
	if len(p) < 4 {
		return 0, fmt.Errorf("%w: entry list of %d bytes", errProtocol, len(p))
	}
	count := binary.BigEndian.Uint32(p[:4])
	p = p[4:]
	if count > maxFrame/8 {
		return 0, fmt.Errorf("%w: entry list of %d entries", errProtocol, count)
	}
	for i := uint32(0); i < count; i++ {
		if len(p) < 8 {
			return int(i), fmt.Errorf("%w: truncated entry list", errProtocol)
		}
		id := binary.BigEndian.Uint32(p[:4])
		n := binary.BigEndian.Uint32(p[4:8])
		p = p[8:]
		if uint32(len(p)) < n {
			return int(i), fmt.Errorf("%w: truncated entry blob", errProtocol)
		}
		if err := fn(id, p[:n]); err != nil {
			return int(i), err
		}
		p = p[n:]
	}
	if len(p) != 0 {
		return int(count), fmt.Errorf("%w: %d trailing bytes after entry list", errProtocol, len(p))
	}
	return int(count), nil
}

// appendBlobList appends the wire form of a blob list to dst.
func appendBlobList(dst []byte, blobs [][]byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(blobs)))
	for _, b := range blobs {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
		dst = append(dst, b...)
	}
	return dst
}

// parseBlobList decodes a blob list; the returned slices alias p.
func parseBlobList(p []byte) ([][]byte, error) {
	return parseBlobListInto(nil, p)
}

// parseBlobListInto is parseBlobList reusing dst's backing array, the
// zero-allocation form for the server's per-connection scratch.
func parseBlobListInto(dst [][]byte, p []byte) ([][]byte, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: blob list of %d bytes", errProtocol, len(p))
	}
	count := binary.BigEndian.Uint32(p[:4])
	p = p[4:]
	if count > maxFrame/4 {
		return nil, fmt.Errorf("%w: blob list of %d entries", errProtocol, count)
	}
	if cap(dst) < int(count) {
		dst = make([][]byte, count)
	}
	dst = dst[:count]
	for i := range dst {
		if len(p) < 4 {
			return nil, fmt.Errorf("%w: truncated blob list", errProtocol)
		}
		n := binary.BigEndian.Uint32(p[:4])
		p = p[4:]
		if uint32(len(p)) < n {
			return nil, fmt.Errorf("%w: truncated blob list", errProtocol)
		}
		dst[i] = p[:n]
		p = p[n:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after blob list", errProtocol, len(p))
	}
	return dst, nil
}

// appendIDList appends each id as 4 big-endian bytes.
func appendIDList(dst []byte, ids []uint32) []byte {
	for _, id := range ids {
		dst = binary.BigEndian.AppendUint32(dst, id)
	}
	return dst
}

// parseIDList decodes a packed 4-byte-per-entry id list.
func parseIDList(p []byte) ([]uint32, error) {
	return parseIDListInto(nil, p)
}

// parseIDListInto is parseIDList reusing dst's backing array.
func parseIDListInto(dst []uint32, p []byte) ([]uint32, error) {
	if len(p)%4 != 0 {
		return nil, fmt.Errorf("%w: id list of %d bytes", errProtocol, len(p))
	}
	n := len(p) / 4
	if cap(dst) < n {
		dst = make([]uint32, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = binary.BigEndian.Uint32(p[i*4:])
	}
	return dst, nil
}

// splitBlobChunks splits blobs into consecutive chunks whose encoded
// blob-list payloads each fit in maxFrame, so arbitrarily large batches
// cross the wire as several frames. A single blob too large for one
// frame is an error.
func splitBlobChunks(blobs [][]byte) ([][][]byte, error) {
	total := 4
	start := 0
	var chunks [][][]byte
	for i, b := range blobs {
		need := 4 + len(b)
		if 4+need > maxFrame {
			return nil, fmt.Errorf("%w: blob of %d bytes exceeds max frame", errProtocol, len(b))
		}
		if total+need > maxFrame {
			chunks = append(chunks, blobs[start:i])
			start, total = i, 4
		}
		total += need
	}
	return append(chunks, blobs[start:]), nil
}

// splitIDChunks splits ids into chunks that fit one frame each.
func splitIDChunks(ids []uint32) [][]uint32 {
	if len(ids) <= maxIDsPerFrame {
		return [][]uint32{ids}
	}
	var chunks [][]uint32
	for len(ids) > maxIDsPerFrame {
		chunks = append(chunks, ids[:maxIDsPerFrame])
		ids = ids[maxIDsPerFrame:]
	}
	return append(chunks, ids)
}

func writeFrame(w io.Writer, head byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: frame of %d bytes", errProtocol, len(payload))
	}
	buf := make([]byte, 5+len(payload))
	buf[0] = head
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (head byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes", errProtocol, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// writeTaggedFrame writes one tagged frame (request or response — the
// head byte disambiguates) without allocating: a stack header plus the
// caller's payload, both into w's buffer.
func writeTaggedFrame(w *bufio.Writer, head byte, tag uint32, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: frame of %d bytes", errProtocol, len(payload))
	}
	var hdr [9]byte
	hdr[0] = head
	binary.BigEndian.PutUint32(hdr[1:5], tag)
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// connHost is everything one server connection serves requests against:
// the store, optionally the cluster node (nil on standalone servers —
// cluster ops then answer with an error response), and optionally a
// service-cost model the benchmarks install to charge each request a
// modeled processing time (see WithServiceModel).
type connHost struct {
	store *Store
	node  *ClusterNode
	cost  func(op byte, items int)
	adm   *admission // request admission gate; nil = unlimited
}

// charge bills one request to the service model, if any is installed.
func (h connHost) charge(op byte, items int) {
	if h.cost != nil {
		h.cost(op, items)
	}
}

// connScratch holds one connection's reusable buffers: after warm-up
// the server serves both protocol generations with zero allocations per
// frame on the happy path.
type connScratch struct {
	payload []byte
	reply   []byte
	ids     []uint32
	blobs   [][]byte
	repl    []byte // entry-list scratch for replicating fresh registrations
}

// grow returns a length-n payload buffer, reusing prior capacity.
func (c *connScratch) grow(n int) []byte {
	if cap(c.payload) < n {
		c.payload = make([]byte, n)
	}
	c.payload = c.payload[:n]
	return c.payload
}

// handle serves one request, appending the response payload into the
// scratch reply buffer. op is the untagged op byte; tagged selects the
// partial-reply semantics for lookup batches.
//
// On a clustered host, fresh registrations are pushed to the owner's
// successors *before* the reply is appended: once a client sees an id,
// RF replicas hold its blob (minus hinted-handoff skips on dead peers).
func (c *connScratch) handle(h connHost, op byte, payload []byte, tagged bool) (status byte, reply []byte) {
	store := h.store
	reply = c.reply[:0]
	status = statusOK
	switch op {
	case opRegister:
		id, fresh := store.registerBlob(payload)
		h.charge(op, 1)
		if fresh && h.node != nil {
			c.repl = appendEntries(c.repl[:0], []uint32{id}, [][]byte{payload})
			h.node.replicate(c.repl)
		}
		reply = binary.BigEndian.AppendUint32(reply, id)
	case opLookup:
		if len(payload) != 4 {
			return statusErr, append(reply, "lookup payload must be 4 bytes"...)
		}
		id := binary.BigEndian.Uint32(payload)
		blob, ok := store.lookupStr(id)
		h.charge(op, 1)
		if !ok {
			return statusErr, fmt.Appendf(reply, "%v: %d", ErrUnknownGlobalID, id)
		}
		reply = append(reply, blob...)
	case opRegisterBatch:
		blobs, err := parseBlobListInto(c.blobs[:0], payload)
		if err != nil {
			return statusErr, append(reply, err.Error()...)
		}
		c.blobs = blobs
		c.repl = c.repl[:0]
		freshN := 0
		for _, b := range blobs {
			id, fresh := store.registerBlob(b)
			if fresh && h.node != nil {
				c.repl = appendEntry(c.repl, id, b)
				freshN++
			}
			reply = binary.BigEndian.AppendUint32(reply, id)
		}
		h.charge(op, len(blobs))
		if freshN > 0 {
			// Prepend the entry count the per-entry appends left out.
			c.repl = append(c.repl, 0, 0, 0, 0)
			copy(c.repl[4:], c.repl)
			binary.BigEndian.PutUint32(c.repl[:4], uint32(freshN))
			h.node.replicate(c.repl)
		}
	case opLookupBatch:
		ids, err := parseIDListInto(c.ids[:0], payload)
		if err != nil {
			return statusErr, append(reply, err.Error()...)
		}
		c.ids = ids
		h.charge(op, len(ids))
		reply = binary.BigEndian.AppendUint32(reply, uint32(len(ids)))
		included := 0
		for _, id := range ids {
			blob, ok := store.lookupStr(id)
			if !ok {
				return statusErr, fmt.Appendf(reply[:0], "%v: %d", ErrUnknownGlobalID, id)
			}
			if tagged && included > 0 && len(reply)+4+len(blob) > maxFrame {
				// Partial tagged reply: stop before overflowing the
				// frame; the client re-requests the remaining ids.
				break
			}
			reply = binary.BigEndian.AppendUint32(reply, uint32(len(blob)))
			reply = append(reply, blob...)
			included++
		}
		binary.BigEndian.PutUint32(reply[:4], uint32(included))
	case opStats:
		st := store.Stats()
		reply = binary.BigEndian.AppendUint64(reply, uint64(st.GlobalTaints))
		reply = binary.BigEndian.AppendUint64(reply, uint64(st.Registrations))
		reply = binary.BigEndian.AppendUint64(reply, uint64(st.Lookups))
	case opRing:
		if h.node == nil {
			return statusErr, append(reply, "not a cluster member"...)
		}
		reply = appendRing(reply, h.node.Ring())
	case opJoin:
		if h.node == nil {
			return statusErr, append(reply, "not a cluster member"...)
		}
		m, err := parseMember(payload)
		if err != nil {
			return statusErr, append(reply, err.Error()...)
		}
		r, err := h.node.Join(m)
		if err != nil {
			return statusErr, append(reply, err.Error()...)
		}
		reply = appendRing(reply, r)
	case opReplicate, opRepair:
		if h.node == nil {
			return statusErr, append(reply, "not a cluster member"...)
		}
		n, err := forEachEntry(payload, store.AdoptBlob)
		h.charge(op, n)
		if err != nil {
			return statusErr, append(reply, err.Error()...)
		}
		if op == opRepair {
			h.node.repairs.Add(int64(n))
		}
	default:
		return statusErr, fmt.Appendf(reply, "unknown op %q", op)
	}
	return status, reply
}

// ServeConn answers protocol requests on one connection until the peer
// disconnects — the per-connection loop used by Server. Reads are
// buffered, responses are coalesced: the writer is only flushed once no
// further complete request is already buffered, so a pipelining client
// pays one syscall for a burst of replies instead of one per reply.
func ServeConn(store *Store, conn io.ReadWriter) error {
	return serveConn(connHost{store: store}, conn, 0)
}

// readDeadliner is the slice of net.Conn (and netsim.Conn) the server
// needs to bound how long a connection may sit idle or dribble a frame.
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// serveConn is ServeConn with an idle/read timeout: when nonzero and
// the connection supports read deadlines, the deadline is re-armed
// before each frame, so a peer that goes silent (or stalls mid-frame)
// holds its server goroutine for at most readTimeout instead of
// forever.
func serveConn(h connHost, conn io.ReadWriter, readTimeout time.Duration) error {
	var rd readDeadliner
	if readTimeout > 0 {
		rd, _ = conn.(readDeadliner)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var scratch connScratch
	for {
		if rd != nil {
			rd.SetReadDeadline(time.Now().Add(readTimeout))
		}
		op, err := br.ReadByte()
		if err != nil {
			if err == io.EOF {
				return bw.Flush()
			}
			bw.Flush()
			return err
		}
		base, tagged := taggedBase(op)
		var tag, n uint32
		var hdr [8]byte
		if tagged {
			if _, err := io.ReadFull(br, hdr[:8]); err != nil {
				return eofOK(err, bw)
			}
			tag = binary.BigEndian.Uint32(hdr[0:4])
			n = binary.BigEndian.Uint32(hdr[4:8])
		} else {
			if _, err := io.ReadFull(br, hdr[:4]); err != nil {
				return eofOK(err, bw)
			}
			n = binary.BigEndian.Uint32(hdr[0:4])
		}
		if n > maxFrame {
			bw.Flush()
			return fmt.Errorf("%w: frame of %d bytes", errProtocol, n)
		}
		payload := scratch.grow(int(n))
		if _, err := io.ReadFull(br, payload); err != nil {
			return eofOK(err, bw)
		}

		var status byte
		var reply []byte
		if h.adm != nil && !h.adm.admit() {
			// Load shed: the request queue is full. Answering with a typed
			// error (instead of stalling or dropping the conn) is the
			// brownout contract — the client knows to back off, journal,
			// or try a replica, and the connection stays usable.
			status, reply = statusErr, fmt.Appendf(scratch.reply[:0], "%v: request shed", ErrOverloaded)
		} else {
			status, reply = scratch.handle(h, base, payload, tagged)
			if h.adm != nil {
				h.adm.release()
			}
		}
		scratch.reply = reply[:0]
		if tagged {
			if status == statusOK {
				status = statusTaggedOK
			} else {
				status = statusTaggedErr
			}
			if len(reply) > maxReplyFrame {
				bw.Flush()
				return fmt.Errorf("%w: reply of %d bytes", errProtocol, len(reply))
			}
			var h [9]byte
			h[0] = status
			binary.BigEndian.PutUint32(h[1:5], tag)
			binary.BigEndian.PutUint32(h[5:9], uint32(len(reply)))
			if _, err = bw.Write(h[:]); err == nil {
				_, err = bw.Write(reply)
			}
		} else {
			if len(reply) > maxFrame {
				// The untagged generation never learned to split
				// replies; fail the connection as it always has.
				bw.Flush()
				return fmt.Errorf("%w: frame of %d bytes", errProtocol, len(reply))
			}
			var h [5]byte
			h[0] = status
			binary.BigEndian.PutUint32(h[1:5], uint32(len(reply)))
			if _, err = bw.Write(h[:]); err == nil {
				_, err = bw.Write(reply)
			}
		}
		if err != nil {
			return err
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
}

// eofOK flushes pending responses and maps a mid-frame disconnect to a
// clean close, matching the untagged protocol's historic behaviour.
func eofOK(err error, bw *bufio.Writer) error {
	bw.Flush()
	if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
		return nil
	}
	return err
}

// serverErr turns an error-response payload back into a client-side
// error. The unknown-id failure is re-typed so it matches
// ErrUnknownGlobalID under errors.Is even after a wire crossing — the
// cluster client's replica fallback and read-repair key on exactly that
// distinction ("this replica doesn't have it" vs "the call failed").
func serverErr(payload []byte) error {
	const marker = "taintmap: unknown global id"
	if len(payload) >= len(marker) && string(payload[:len(marker)]) == marker {
		return fmt.Errorf("taintmap: server error: %w%s", ErrUnknownGlobalID, payload[len(marker):])
	}
	// Overload sheds are re-typed the same way: the cluster client's
	// partition-scoped degraded fallback keys on ErrOverloaded.
	const overMarker = "taintmap: server overloaded"
	if len(payload) >= len(overMarker) && string(payload[:len(overMarker)]) == overMarker {
		return fmt.Errorf("taintmap: server error: %w%s", ErrOverloaded, payload[len(overMarker):])
	}
	return fmt.Errorf("taintmap: server error: %s", payload)
}

// roundTrip issues one untagged request and decodes the response — the
// stop-and-wait client's engine.
func roundTrip(conn io.ReadWriter, op byte, payload []byte) ([]byte, error) {
	if err := writeFrame(conn, op, payload); err != nil {
		return nil, fmt.Errorf("taintmap: send request: %w", err)
	}
	status, reply, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("taintmap: read response: %w", err)
	}
	if status != statusOK {
		return nil, serverErr(reply)
	}
	return reply, nil
}
