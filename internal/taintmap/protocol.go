package taintmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire protocol: length-prefixed request/response frames over any
// reliable stream.
//
//	request:  op byte | uint32 payloadLen | payload
//	response: status byte | uint32 payloadLen | payload
//
// ops: 'R' register (payload = taint blob, reply = 4-byte id),
//      'L' lookup   (payload = 4-byte id, reply = taint blob),
//      'B' register batch (payload = blob list, reply = 4-byte id per blob),
//      'M' lookup batch   (payload = 4-byte id per entry, reply = blob list),
//      'S' stats    (payload empty, reply = 3x uint64).
//
// A blob list is uint32 count followed by count (uint32 len | bytes)
// entries. The batch ops let a node resolve every distinct taint of a
// message in one round trip instead of one per taint (§III-D's Taint
// Map traffic, amortized over runs).

const (
	opRegister      = 'R'
	opLookup        = 'L'
	opRegisterBatch = 'B'
	opLookupBatch   = 'M'
	opStats         = 'S'

	statusOK  = 0
	statusErr = 1
)

// maxFrame bounds payload sizes to keep a corrupted peer from forcing a
// huge allocation.
const maxFrame = 1 << 20

// errProtocol reports a malformed frame.
var errProtocol = errors.New("taintmap: protocol error")

// appendBlobList appends the wire form of a blob list to dst.
func appendBlobList(dst []byte, blobs [][]byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(blobs)))
	for _, b := range blobs {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
		dst = append(dst, b...)
	}
	return dst
}

// parseBlobList decodes a blob list; the returned slices alias p.
func parseBlobList(p []byte) ([][]byte, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: blob list of %d bytes", errProtocol, len(p))
	}
	count := binary.BigEndian.Uint32(p[:4])
	p = p[4:]
	if count > maxFrame/4 {
		return nil, fmt.Errorf("%w: blob list of %d entries", errProtocol, count)
	}
	blobs := make([][]byte, count)
	for i := range blobs {
		if len(p) < 4 {
			return nil, fmt.Errorf("%w: truncated blob list", errProtocol)
		}
		n := binary.BigEndian.Uint32(p[:4])
		p = p[4:]
		if uint32(len(p)) < n {
			return nil, fmt.Errorf("%w: truncated blob list", errProtocol)
		}
		blobs[i] = p[:n]
		p = p[n:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after blob list", errProtocol, len(p))
	}
	return blobs, nil
}

// appendIDList appends each id as 4 big-endian bytes.
func appendIDList(dst []byte, ids []uint32) []byte {
	for _, id := range ids {
		dst = binary.BigEndian.AppendUint32(dst, id)
	}
	return dst
}

// parseIDList decodes a packed 4-byte-per-entry id list.
func parseIDList(p []byte) ([]uint32, error) {
	if len(p)%4 != 0 {
		return nil, fmt.Errorf("%w: id list of %d bytes", errProtocol, len(p))
	}
	ids := make([]uint32, len(p)/4)
	for i := range ids {
		ids[i] = binary.BigEndian.Uint32(p[i*4:])
	}
	return ids, nil
}

func writeFrame(w io.Writer, head byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: frame of %d bytes", errProtocol, len(payload))
	}
	buf := make([]byte, 5+len(payload))
	buf[0] = head
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (head byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes", errProtocol, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ServeConn answers protocol requests on one connection until the peer
// disconnects. It is the per-connection loop used by Server.
func ServeConn(store *Store, conn io.ReadWriter) error {
	for {
		op, payload, err := readFrame(conn)
		if err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		var reply []byte
		status := byte(statusOK)
		switch op {
		case opRegister:
			id := store.RegisterBlob(payload)
			reply = binary.BigEndian.AppendUint32(nil, id)
		case opLookup:
			if len(payload) != 4 {
				status, reply = statusErr, []byte("lookup payload must be 4 bytes")
				break
			}
			blob, err := store.LookupBlob(binary.BigEndian.Uint32(payload))
			if err != nil {
				status, reply = statusErr, []byte(err.Error())
				break
			}
			reply = blob
		case opRegisterBatch:
			blobs, err := parseBlobList(payload)
			if err != nil {
				status, reply = statusErr, []byte(err.Error())
				break
			}
			reply = appendIDList(nil, store.RegisterBlobs(blobs))
		case opLookupBatch:
			ids, err := parseIDList(payload)
			if err != nil {
				status, reply = statusErr, []byte(err.Error())
				break
			}
			blobs, err := store.LookupBlobs(ids)
			if err != nil {
				status, reply = statusErr, []byte(err.Error())
				break
			}
			reply = appendBlobList(nil, blobs)
		case opStats:
			st := store.Stats()
			reply = binary.BigEndian.AppendUint64(nil, uint64(st.GlobalTaints))
			reply = binary.BigEndian.AppendUint64(reply, uint64(st.Registrations))
			reply = binary.BigEndian.AppendUint64(reply, uint64(st.Lookups))
		default:
			status, reply = statusErr, []byte(fmt.Sprintf("unknown op %q", op))
		}
		if err := writeFrame(conn, status, reply); err != nil {
			return err
		}
	}
}

// roundTrip issues one request and decodes the response.
func roundTrip(conn io.ReadWriter, op byte, payload []byte) ([]byte, error) {
	if err := writeFrame(conn, op, payload); err != nil {
		return nil, fmt.Errorf("taintmap: send request: %w", err)
	}
	status, reply, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("taintmap: read response: %w", err)
	}
	if status != statusOK {
		return nil, fmt.Errorf("taintmap: server error: %s", reply)
	}
	return reply, nil
}
