package taintmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire protocol: length-prefixed request/response frames over any
// reliable stream.
//
//	request:  op byte | uint32 payloadLen | payload
//	response: status byte | uint32 payloadLen | payload
//
// ops: 'R' register (payload = taint blob, reply = 4-byte id),
//      'L' lookup   (payload = 4-byte id, reply = taint blob),
//      'S' stats    (payload empty, reply = 3x uint64).

const (
	opRegister = 'R'
	opLookup   = 'L'
	opStats    = 'S'

	statusOK  = 0
	statusErr = 1
)

// maxFrame bounds payload sizes to keep a corrupted peer from forcing a
// huge allocation.
const maxFrame = 1 << 20

// errProtocol reports a malformed frame.
var errProtocol = errors.New("taintmap: protocol error")

func writeFrame(w io.Writer, head byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: frame of %d bytes", errProtocol, len(payload))
	}
	buf := make([]byte, 5+len(payload))
	buf[0] = head
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (head byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes", errProtocol, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ServeConn answers protocol requests on one connection until the peer
// disconnects. It is the per-connection loop used by Server.
func ServeConn(store *Store, conn io.ReadWriter) error {
	for {
		op, payload, err := readFrame(conn)
		if err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		var reply []byte
		status := byte(statusOK)
		switch op {
		case opRegister:
			id := store.RegisterBlob(payload)
			reply = binary.BigEndian.AppendUint32(nil, id)
		case opLookup:
			if len(payload) != 4 {
				status, reply = statusErr, []byte("lookup payload must be 4 bytes")
				break
			}
			blob, err := store.LookupBlob(binary.BigEndian.Uint32(payload))
			if err != nil {
				status, reply = statusErr, []byte(err.Error())
				break
			}
			reply = blob
		case opStats:
			st := store.Stats()
			reply = binary.BigEndian.AppendUint64(nil, uint64(st.GlobalTaints))
			reply = binary.BigEndian.AppendUint64(reply, uint64(st.Registrations))
			reply = binary.BigEndian.AppendUint64(reply, uint64(st.Lookups))
		default:
			status, reply = statusErr, []byte(fmt.Sprintf("unknown op %q", op))
		}
		if err := writeFrame(conn, status, reply); err != nil {
			return err
		}
	}
}

// roundTrip issues one request and decodes the response.
func roundTrip(conn io.ReadWriter, op byte, payload []byte) ([]byte, error) {
	if err := writeFrame(conn, op, payload); err != nil {
		return nil, fmt.Errorf("taintmap: send request: %w", err)
	}
	status, reply, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("taintmap: read response: %w", err)
	}
	if status != statusOK {
		return nil, fmt.Errorf("taintmap: server error: %s", reply)
	}
	return reply, nil
}
