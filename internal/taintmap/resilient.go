package taintmap

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dista/internal/core/taint"
)

// This file implements the resilience layer around the Taint Map client
// path (DESIGN.md "Failure model"). A ResilientClient wraps the
// multiplexed RemoteClient with:
//
//   - per-call deadlines (a wedged connection fails fast instead of
//     hanging every instrumented write behind it),
//   - transparent reconnect with jittered exponential backoff,
//   - idempotent replay: registration is content-addressed, so the
//     registers journaled during an outage re-issue safely after
//     reconnect and resolve to the same Global IDs any other node got,
//   - a circuit breaker: after BreakerThreshold consecutive failed
//     reconnect attempts the client stops making callers wait and
//     enters degraded local mode,
//   - degraded local mode: while the server is unreachable, Register
//     resolves against a local content-addressed Store and returns a
//     provisional id (high bit set), queueing the registration in a
//     bounded store-and-forward journal that drains on reconnect.
//     Intra-node tracking and sink checks keep working; only
//     cross-node transfer must wait for a real Global ID (callers see
//     ErrGlobalIDPending, not a stall).

// provisionalBit marks ids minted by the degraded local store. Real
// Global IDs grow from 1, so the two spaces cannot collide until the
// Taint Map holds 2^31 distinct taints.
const provisionalBit uint32 = 1 << 31

// IsProvisional reports whether id was minted locally during an outage
// and is not yet backed by the Taint Map. Provisional ids are valid for
// intra-node tracking and sink checks but must not cross nodes.
func IsProvisional(id uint32) bool { return id&provisionalBit != 0 }

// Typed failures of the resilience layer, matched with errors.Is.
var (
	// ErrDegraded reports an operation the degraded client cannot serve
	// locally (e.g. looking up a Global ID never seen on this node).
	ErrDegraded = errors.New("taintmap: degraded: taint map unreachable")
	// ErrJournalFull reports a degraded-mode registration rejected
	// because the store-and-forward journal hit its bound. It matches
	// ErrDegraded under errors.Is.
	ErrJournalFull = fmt.Errorf("%w: journal full", ErrDegraded)
	// ErrGlobalIDPending reports a taint that is tracked (present,
	// checkable at sinks) but whose Global ID is provisional, so it
	// cannot be transferred to another node yet.
	ErrGlobalIDPending = errors.New("taintmap: taint present, global ID pending")
)

// DialFunc opens one connection to the Taint Map server. The
// ResilientClient calls it for the initial connection and again on
// every reconnect attempt.
type DialFunc func() (io.ReadWriteCloser, error)

// clock abstracts time for the backoff loop so tests can drive it with
// a fake instead of sleeping.
type clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ResilientOptions tunes a ResilientClient. The zero value selects the
// documented defaults; a negative CallTimeout or JitterFrac disables
// that feature outright.
type ResilientOptions struct {
	// CallTimeout bounds every wire call. Default 2s; negative disables
	// per-call deadlines.
	CallTimeout time.Duration
	// BackoffBase is the first reconnect delay. Default 5ms.
	BackoffBase time.Duration
	// BackoffMax caps the doubling backoff. Default 1s. Once degraded,
	// this is the probe cadence for detecting a healed server.
	BackoffMax time.Duration
	// JitterFrac spreads each delay uniformly in ±frac around the
	// schedule so a fleet of clients does not reconnect in lockstep.
	// Default 0.2; negative disables jitter (deterministic schedule).
	JitterFrac float64
	// BreakerThreshold is how many consecutive failed reconnect
	// attempts trip the circuit breaker into degraded mode. Default 3.
	BreakerThreshold int
	// JournalLimit bounds the degraded-mode store-and-forward journal;
	// registrations past it fail with ErrJournalFull. Default 4096.
	JournalLimit int
	// Seed seeds the jitter generator; 0 uses a fixed default seed.
	Seed int64

	// clk injects a fake clock in tests; nil means real time.
	clk clock
	// memo injects a shared id -> taint cache; nil allocates a private
	// one. The cluster client threads one memo through every member so a
	// taint resolved via any replica is warm for all of them.
	memo *cache
	// local injects the degraded-mode provisional-id store; nil
	// allocates a standalone (partition 0) one. The cluster client hands
	// each member a store of that member's partition, so even
	// provisional ids carry the partition that will eventually own them.
	local *Store
	// budget injects the shared retry budget gating reconnect dials
	// (and, at the cluster layer, hedges); nil means unbudgeted. The
	// cluster client threads one budget through every member so a
	// cluster-wide brownout cannot multiply into per-member dial storms.
	budget *Budget
}

func (o *ResilientOptions) withDefaults() ResilientOptions {
	opt := *o
	switch {
	case opt.CallTimeout == 0:
		opt.CallTimeout = 2 * time.Second
	case opt.CallTimeout < 0:
		opt.CallTimeout = 0
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 5 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = time.Second
	}
	switch {
	case opt.JitterFrac == 0:
		opt.JitterFrac = 0.2
	case opt.JitterFrac < 0:
		opt.JitterFrac = 0
	}
	if opt.BreakerThreshold <= 0 {
		opt.BreakerThreshold = 3
	}
	if opt.JournalLimit <= 0 {
		opt.JournalLimit = 4096
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.clk == nil {
		opt.clk = realClock{}
	}
	if opt.memo == nil {
		opt.memo = &cache{}
	}
	if opt.local == nil {
		opt.local = NewStore()
	}
	return opt
}

// backoffDelay computes the delay before reconnect attempt number
// attempt (0-based): base doubled per attempt, capped at max, spread by
// ±jitter. Pure so the schedule is unit-testable.
func backoffDelay(attempt int, base, max time.Duration, jitter float64, rng *rand.Rand) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if jitter > 0 {
		d = time.Duration(float64(d) * (1 + jitter*(2*rng.Float64()-1)))
	}
	if d < 0 {
		d = base
	}
	return d
}

// journalEntry is one degraded-mode registration awaiting replay.
type journalEntry struct {
	blob string      // serialized taint (the content address)
	prov uint32      // provisional id handed to the caller
	t    taint.Taint // node to stamp with the real Global ID on drain
}

// ResilientClient is a Client that survives Taint Map outages. The
// healthy hot path is one atomic load plus the wrapped RemoteClient
// call; all resilience machinery sits on the failure paths.
//
// State machine: connected -> (connection failure) -> reconnecting
// (callers briefly wait) -> either connected again, or — after
// BreakerThreshold failed attempts — degraded, where Register journals
// locally and Lookup serves from the memo. Reconnect attempts continue
// at the backoff cap; on success the journal drains (idempotent
// content-addressed replay), provisional ids are remapped, and the
// client is connected again.
type ResilientClient struct {
	dial DialFunc
	tree *taint.Tree
	opt  ResilientOptions
	memo *cache // shared across connection epochs

	inner atomic.Pointer[RemoteClient] // nil while disconnected

	mu           sync.Mutex
	cond         *sync.Cond // broadcast on every state transition
	seq          uint64     // state-change counter; waiters watch it
	degraded     bool
	reconnecting bool
	draining     bool // a background drainLoop is running
	closed       bool
	local        *Store // degraded-mode provisional id source
	queued       []journalEntry
	journaled    map[uint32]struct{} // provisional ids currently queued
	remap        map[uint32]uint32   // provisional -> real Global ID

	// drainMu serializes journal drains: the reconnect loop and the
	// background drainLoop both replay c.queued, and two concurrent
	// drains would each truncate the queue by their own batch length.
	drainMu sync.Mutex

	rng  *rand.Rand // jitter; used only by the single reconnect loop
	done chan struct{}

	reconnects     atomic.Int64
	dialFailures   atomic.Int64
	probeFailures  atomic.Int64
	journaledTotal atomic.Int64
	drainedTotal   atomic.Int64
}

var _ Client = (*ResilientClient)(nil)

// NewResilientClient dials the Taint Map and returns a client that
// keeps itself connected. Construction never fails: if the first dial
// errors the client starts in the reconnecting state and callers block
// (bounded by the breaker) or run degraded until the server appears.
func NewResilientClient(dial DialFunc, tree *taint.Tree, opt ResilientOptions) *ResilientClient {
	c := &ResilientClient{
		dial:      dial,
		tree:      tree,
		opt:       opt.withDefaults(),
		journaled: make(map[uint32]struct{}),
		remap:     make(map[uint32]uint32),
		done:      make(chan struct{}),
	}
	c.memo = c.opt.memo
	c.local = c.opt.local
	c.cond = sync.NewCond(&c.mu)
	c.rng = rand.New(rand.NewSource(c.opt.Seed))
	if conn, err := c.dial(); err == nil {
		c.inner.Store(newRemoteClientWith(conn, tree, c.memo, c.opt.CallTimeout))
	} else {
		c.dialFailures.Add(1)
		c.reconnecting = true
		go c.reconnectLoop(1)
	}
	return c
}

// isConnErr reports whether err means the connection (not the request)
// failed, so the call is worth retrying on a fresh connection.
func isConnErr(err error) bool {
	return errors.Is(err, ErrClientClosed) || errors.Is(err, ErrCallTimeout)
}

// connFailed retires a dead inner client and starts the reconnect loop.
// Concurrent callers may report the same client; only the first one
// transitions the state.
func (c *ResilientClient) connFailed(old *RemoteClient) {
	c.mu.Lock()
	if c.inner.Load() == old {
		c.inner.Store(nil)
		c.seq++
		c.cond.Broadcast()
		if !c.reconnecting && !c.closed {
			c.reconnecting = true
			go c.reconnectLoop(0)
		}
	}
	c.mu.Unlock()
	old.Close()
}

// reconnectLoop re-dials with jittered exponential backoff until the
// server answers, then drains the journal and republishes the client.
// failures carries consecutive failed attempts (the constructor's
// failed first dial counts); at BreakerThreshold it trips the breaker.
func (c *ResilientClient) reconnectLoop(failures int) {
	attempt := 0
	for {
		c.mu.Lock()
		if c.closed {
			c.reconnecting = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()

		// Reconnect dials are retry traffic: they spend from the shared
		// budget, so a fleet-wide brownout cannot be amplified into a
		// dial storm. A denied attempt counts as a failure (the breaker
		// may trip into degraded mode) and waits out the backoff.
		if !c.opt.budget.TryTake(1) {
			failures++
			c.maybeTrip(failures)
			if !c.sleep(attempt) {
				return
			}
			attempt++
			continue
		}
		conn, err := c.dial()
		if err != nil {
			c.dialFailures.Add(1)
			failures++
			c.maybeTrip(failures)
			if !c.sleep(attempt) {
				return
			}
			attempt++
			continue
		}
		rc := newRemoteClientWith(conn, c.tree, c.memo, c.opt.CallTimeout)
		// Probe before trusting the connection: a gray-failing server
		// accepts the dial and then never answers, and publishing it
		// would hand every caller a stall. One stats round trip (bounded
		// by the watchdog) proves the server is answering. Skipped when
		// deadlines are disabled — the probe itself could hang forever.
		if c.opt.CallTimeout > 0 {
			if _, err := rc.call(opStatsTag, nil); err != nil {
				rc.Close()
				c.probeFailures.Add(1)
				failures++
				c.maybeTrip(failures)
				if !c.sleep(attempt) {
					return
				}
				attempt++
				continue
			}
		}
		if err := c.drainJournal(rc); err != nil {
			rc.Close()
			failures++
			c.maybeTrip(failures)
			if !c.sleep(attempt) {
				return
			}
			attempt++
			continue
		}

		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			rc.Close()
			return
		}
		if len(c.queued) > 0 {
			// A degraded caller journaled between the drain and here;
			// go around and drain again before publishing.
			c.mu.Unlock()
			continue
		}
		c.inner.Store(rc)
		c.degraded = false
		c.reconnecting = false
		c.seq++
		c.cond.Broadcast()
		c.mu.Unlock()
		c.reconnects.Add(1)
		return
	}
}

// maybeTrip flips the client into degraded mode once enough consecutive
// reconnect attempts have failed, releasing every waiting caller into
// the local path.
func (c *ResilientClient) maybeTrip(failures int) {
	if failures < c.opt.BreakerThreshold {
		return
	}
	c.mu.Lock()
	if !c.degraded && !c.closed {
		c.degraded = true
		c.seq++
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// sleep waits out the backoff delay for attempt; false means the client
// closed and the loop must exit.
func (c *ResilientClient) sleep(attempt int) bool {
	d := backoffDelay(attempt, c.opt.BackoffBase, c.opt.BackoffMax, c.opt.JitterFrac, c.rng)
	select {
	case <-c.opt.clk.After(d):
		return true
	case <-c.done:
		c.mu.Lock()
		c.reconnecting = false
		c.mu.Unlock()
		return false
	}
}

// drainJournal replays every queued registration through rc. Replay is
// idempotent: registration is content-addressed, so re-sending a blob
// the server already has (from a pre-crash send or another node)
// returns the same Global ID. Each drained entry remaps its provisional
// id and stamps the real id onto the taint node.
func (c *ResilientClient) drainJournal(rc *RemoteClient) error {
	c.drainMu.Lock()
	defer c.drainMu.Unlock()
	for {
		c.mu.Lock()
		batch := c.queued
		c.mu.Unlock()
		if len(batch) == 0 {
			return nil
		}
		ids := make([]uint32, len(batch))
		for i, e := range batch {
			id, err := rc.registerBlob([]byte(e.blob))
			if err != nil {
				return err
			}
			ids[i] = id
		}
		c.mu.Lock()
		for i, e := range batch {
			c.remap[e.prov] = ids[i]
			e.t.SetGlobalID(ids[i])
			c.memo.put(ids[i], e.t)
			delete(c.journaled, e.prov)
		}
		// New entries may have been appended behind the batch; keep them.
		c.queued = c.queued[len(batch):]
		c.mu.Unlock()
		c.drainedTotal.Add(int64(len(batch)))
	}
}

// journalLocked registers t against the local store and queues the
// registration for replay, returning a provisional id. Caller holds
// c.mu with the client degraded.
func (c *ResilientClient) journalLocked(t taint.Taint) (uint32, error) {
	blob, err := taint.MarshalTaint(t)
	if err != nil {
		return 0, err
	}
	return c.journalBlobLocked(t, blob)
}

// journalBlobLocked is journalLocked for callers that already hold t's
// serialized form.
func (c *ResilientClient) journalBlobLocked(t taint.Taint, blob []byte) (uint32, error) {
	prov := provisionalBit | c.local.RegisterBlob(blob)
	if gid, ok := c.remap[prov]; ok {
		// Seen and drained in an earlier outage: the real id is known.
		t.SetGlobalID(gid)
		c.memo.put(gid, t)
		return gid, nil
	}
	if _, ok := c.journaled[prov]; ok {
		return prov, nil
	}
	if len(c.queued) >= c.opt.JournalLimit {
		return 0, fmt.Errorf("%w (%d queued)", ErrJournalFull, len(c.queued))
	}
	c.queued = append(c.queued, journalEntry{blob: string(blob), prov: prov, t: t})
	c.journaled[prov] = struct{}{}
	c.journaledTotal.Add(1)
	// Memoize under the provisional id so sink-side lookups resolve
	// locally. The real Global ID is NOT stamped on t: cross-node
	// transfer must keep failing with ErrGlobalIDPending until drain.
	c.memo.put(prov, t)
	return prov, nil
}

// journalFallback journals one registration regardless of breaker
// state: the partition-scoped degraded path. The cluster client calls
// it when a whole partition is effectively unavailable — every replica
// down, the retry budget empty, or the owner shedding load
// (ErrOverloaded) — so the caller gets a provisional id now instead of
// an error, and a background drain replays the journal as soon as this
// member's connection can absorb it, without waiting for a full
// disconnect/reconnect cycle.
func (c *ResilientClient) journalFallback(t taint.Taint, blob []byte) (uint32, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClientClosed
	}
	id, err := c.journalBlobLocked(t, blob)
	kick := err == nil && !c.draining && c.inner.Load() != nil
	if kick {
		c.draining = true
	}
	c.mu.Unlock()
	if kick {
		go c.drainLoop()
	}
	return id, err
}

// drainLoop replays journalFallback entries in the background while the
// client stays connected. On any drain failure it stops: the entries
// stay queued and the reconnect loop replays them before republishing a
// fresh connection.
func (c *ResilientClient) drainLoop() {
	ok := true
	defer func() {
		c.mu.Lock()
		again := ok && !c.closed && len(c.queued) > 0 && c.inner.Load() != nil
		c.draining = again
		c.mu.Unlock()
		if again {
			// An entry landed between the last pass and here; keep going
			// so it does not sit until the next fallback or reconnect.
			go c.drainLoop()
		}
	}()
	for {
		rc := c.inner.Load()
		c.mu.Lock()
		done := c.closed || len(c.queued) == 0
		c.mu.Unlock()
		if done || rc == nil {
			return
		}
		if err := c.drainJournal(rc); err != nil {
			if isConnErr(err) {
				c.connFailed(rc)
				ok = false
				return
			}
			// The server answered but refused the replay — most likely
			// still shedding (ErrOverloaded). Retry after a full backoff
			// while the budget allows; once it denies, the journal waits
			// for the next fallback kick or reconnect drain.
			if !c.opt.budget.TryTake(1) {
				ok = false
				return
			}
			select {
			case <-c.opt.clk.After(c.opt.BackoffMax):
			case <-c.done:
				ok = false
				return
			}
		}
	}
}

// lookupAttempt is one single-shot Lookup leg for the cluster client's
// hedged reads: it uses whatever connection is live right now and fails
// fast — no reconnect wait, no breaker wait — because the hedge engine
// has other replicas to try. A non-zero deadline bounds the wait inline
// without declaring the connection wedged.
func (c *ResilientClient) lookupAttempt(id uint32, deadline time.Time) (taint.Taint, error) {
	if t, ok := c.memo.get(id); ok {
		return t, nil
	}
	rc := c.inner.Load()
	if rc == nil {
		return taint.Taint{}, fmt.Errorf("%w: no connection", ErrDegraded)
	}
	t, err := rc.lookupDeadline(id, deadline)
	if err != nil && isConnErr(err) {
		c.connFailed(rc)
	}
	return t, err
}

// lookupBatchAttempt is lookupAttempt for an id batch. Results land in
// the shared memo; the caller refetches from there.
func (c *ResilientClient) lookupBatchAttempt(ids []uint32, deadline time.Time) error {
	rc := c.inner.Load()
	if rc == nil {
		return fmt.Errorf("%w: no connection", ErrDegraded)
	}
	_, err := rc.lookupBatchDeadline(ids, deadline)
	if err != nil && isConnErr(err) {
		c.connFailed(rc)
	}
	return err
}

// await blocks until the client leaves the "disconnected, breaker not
// yet tripped" state. Caller holds c.mu; await returns with it held.
func (c *ResilientClient) await() {
	seq := c.seq
	for c.seq == seq && !c.closed {
		c.cond.Wait()
	}
}

// Register implements Client. Healthy: one atomic load + the wrapped
// call. Disconnected: waits for reconnect, bounded by the breaker.
// Degraded: journals locally and returns a provisional id.
func (c *ResilientClient) Register(t taint.Taint) (uint32, error) {
	if t.Empty() {
		return 0, nil
	}
	if id := t.GlobalID(); id != 0 {
		return id, nil
	}
	for {
		if rc := c.inner.Load(); rc != nil {
			id, err := rc.Register(t)
			if err == nil || !isConnErr(err) {
				return id, err
			}
			c.connFailed(rc)
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return 0, ErrClientClosed
		}
		if c.inner.Load() != nil {
			c.mu.Unlock()
			continue
		}
		if c.degraded {
			id, err := c.journalLocked(t)
			c.mu.Unlock()
			return id, err
		}
		c.await()
		c.mu.Unlock()
	}
}

// registerMarshaled is Register for callers that already serialized t
// (the cluster client, which marshals first to route by content hash).
// Same state machine: healthy registers remotely, degraded journals.
func (c *ResilientClient) registerMarshaled(t taint.Taint, blob []byte) (uint32, error) {
	if id := t.GlobalID(); id != 0 {
		return id, nil
	}
	for {
		if rc := c.inner.Load(); rc != nil {
			id, err := rc.registerMarshaled(t, blob)
			if err == nil || !isConnErr(err) {
				return id, err
			}
			c.connFailed(rc)
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return 0, ErrClientClosed
		}
		if c.inner.Load() != nil {
			c.mu.Unlock()
			continue
		}
		if c.degraded {
			id, err := c.journalBlobLocked(t, blob)
			c.mu.Unlock()
			return id, err
		}
		c.await()
		c.mu.Unlock()
	}
}

// registerPending registers pre-marshaled (taint, blob) pairs as one
// batch, stamping and memoizing each result — the cluster client's
// per-partition slice of a RegisterBatch. Degraded, every entry
// journals and gets a provisional id (not stamped on the taint, per the
// ErrGlobalIDPending contract).
func (c *ResilientClient) registerPending(ts []taint.Taint, blobs [][]byte) ([]uint32, error) {
	for {
		if rc := c.inner.Load(); rc != nil {
			ids, err := rc.registerBlobs(blobs)
			if err == nil {
				for i, t := range ts {
					t.SetGlobalID(ids[i])
					c.memo.put(ids[i], t)
				}
				return ids, nil
			}
			if !isConnErr(err) {
				return nil, err
			}
			c.connFailed(rc)
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClientClosed
		}
		if c.inner.Load() != nil {
			c.mu.Unlock()
			continue
		}
		if c.degraded {
			ids := make([]uint32, len(ts))
			for i, t := range ts {
				id, err := c.journalBlobLocked(t, blobs[i])
				if err != nil {
					c.mu.Unlock()
					return nil, err
				}
				ids[i] = id
			}
			c.mu.Unlock()
			return ids, nil
		}
		c.await()
		c.mu.Unlock()
	}
}

// rawCall issues one tagged protocol op on the live connection — the
// cluster client's channel for ring fetches and read-repair pushes.
// There is no degraded fallback: cluster maintenance traffic is
// meaningless without a server, so a disconnected client fails fast
// with ErrDegraded instead of journaling or waiting out the breaker.
func (c *ResilientClient) rawCall(op byte, payload []byte) ([]byte, error) {
	for {
		rc := c.inner.Load()
		if rc == nil {
			return nil, fmt.Errorf("%w: no connection for op %q", ErrDegraded, op)
		}
		reply, err := rc.call(op, payload)
		if err == nil || !isConnErr(err) {
			return reply, err
		}
		c.connFailed(rc)
	}
}

// Lookup implements Client. Provisional ids resolve through the remap
// table or the degraded-mode memo without touching the wire; real ids
// follow the same healthy/wait/degraded paths as Register.
func (c *ResilientClient) Lookup(id uint32) (taint.Taint, error) {
	if id == 0 {
		return taint.Taint{}, nil
	}
	if t, ok := c.memo.get(id); ok {
		return t, nil
	}
	if IsProvisional(id) {
		return c.lookupProvisional(id)
	}
	for {
		if rc := c.inner.Load(); rc != nil {
			t, err := rc.Lookup(id)
			if err == nil || !isConnErr(err) {
				return t, err
			}
			c.connFailed(rc)
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return taint.Taint{}, ErrClientClosed
		}
		if c.inner.Load() != nil {
			c.mu.Unlock()
			continue
		}
		if c.degraded {
			c.mu.Unlock()
			return taint.Taint{}, fmt.Errorf("%w: lookup of unknown id %d", ErrDegraded, id)
		}
		c.await()
		c.mu.Unlock()
	}
}

// lookupProvisional resolves a provisional id: through the remap table
// when a drain already assigned the real Global ID, else from the local
// store the id was minted by.
func (c *ResilientClient) lookupProvisional(id uint32) (taint.Taint, error) {
	c.mu.Lock()
	gid, remapped := c.remap[id]
	c.mu.Unlock()
	if remapped {
		return c.Lookup(gid)
	}
	blob, err := c.local.LookupBlob(id &^ provisionalBit)
	if err != nil {
		return taint.Taint{}, err
	}
	t, err := c.tree.UnmarshalTaint(blob)
	if err != nil {
		return taint.Taint{}, err
	}
	// No SetGlobalID: the node must not carry a provisional id into the
	// cross-node transfer path.
	c.memo.put(id, t)
	return t, nil
}

// RegisterBatch implements Client.
func (c *ResilientClient) RegisterBatch(ts []taint.Taint) ([]uint32, error) {
	for {
		if rc := c.inner.Load(); rc != nil {
			ids, err := rc.RegisterBatch(ts)
			if err == nil || !isConnErr(err) {
				return ids, err
			}
			c.connFailed(rc)
			continue
		}
		ids, pending, _ := collectRegister(ts)
		if len(pending) == 0 {
			return ids, nil
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClientClosed
		}
		if c.inner.Load() != nil {
			c.mu.Unlock()
			continue
		}
		if c.degraded {
			for i, t := range ts {
				if t.Empty() {
					continue
				}
				if id := t.GlobalID(); id != 0 {
					ids[i] = id
					continue
				}
				id, err := c.journalLocked(t)
				if err != nil {
					c.mu.Unlock()
					return nil, err
				}
				ids[i] = id
			}
			c.mu.Unlock()
			return ids, nil
		}
		c.await()
		c.mu.Unlock()
	}
}

// LookupBatch implements Client. Provisional ids never reach the wire:
// a batch containing any falls back to per-id resolution, which routes
// each provisional id through remap/local-store and the rest through
// the normal path.
func (c *ResilientClient) LookupBatch(ids []uint32) ([]taint.Taint, error) {
	for _, id := range ids {
		if IsProvisional(id) {
			return c.lookupBatchSlow(ids)
		}
	}
	for {
		if rc := c.inner.Load(); rc != nil {
			ts, err := rc.LookupBatch(ids)
			if err == nil || !isConnErr(err) {
				return ts, err
			}
			c.connFailed(rc)
			continue
		}
		ts, missing := c.memo.splitBatch(ids)
		if len(missing) == 0 {
			return ts, nil
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClientClosed
		}
		if c.inner.Load() != nil {
			c.mu.Unlock()
			continue
		}
		if c.degraded {
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: lookup of %d unknown ids", ErrDegraded, len(missing))
		}
		c.await()
		c.mu.Unlock()
	}
}

func (c *ResilientClient) lookupBatchSlow(ids []uint32) ([]taint.Taint, error) {
	ts := make([]taint.Taint, len(ids))
	for i, id := range ids {
		t, err := c.Lookup(id)
		if err != nil {
			return nil, err
		}
		ts[i] = t
	}
	return ts, nil
}

// Health is a snapshot of the resilience state, for tests, monitoring
// and the degraded-mode banner.
type Health struct {
	Connected     bool  // a live connection is published
	Degraded      bool  // breaker tripped; registers journal locally
	JournalLen    int   // registrations queued for replay
	Reconnects    int64 // successful reconnects
	DialFailures  int64 // failed dial attempts
	ProbeFailures int64 // dials that succeeded but failed the answer probe
	Journaled     int64 // registrations ever journaled
	Drained       int64 // journaled registrations replayed
}

// Health reports the client's current resilience state.
func (c *ResilientClient) Health() Health {
	c.mu.Lock()
	h := Health{
		Connected:  c.inner.Load() != nil,
		Degraded:   c.degraded,
		JournalLen: len(c.queued),
	}
	c.mu.Unlock()
	h.Reconnects = c.reconnects.Load()
	h.DialFailures = c.dialFailures.Load()
	h.ProbeFailures = c.probeFailures.Load()
	h.Journaled = c.journaledTotal.Load()
	h.Drained = c.drainedTotal.Load()
	return h
}

// Close implements Client: it stops the reconnect loop, closes any live
// connection and fails subsequent calls with ErrClientClosed. Journaled
// registrations that never drained are dropped — their taints live on
// in this process but were never assigned Global IDs.
func (c *ResilientClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	rc := c.inner.Load()
	c.inner.Store(nil)
	c.seq++
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.done)
	if rc != nil {
		return rc.Close()
	}
	return nil
}
