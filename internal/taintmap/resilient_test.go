package taintmap

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

// simDialer returns a DialFunc connecting from a fixed local host so
// netsim partitions can target the client side by name.
func simDialer(n *netsim.Network, local, addr string) DialFunc {
	return func() (io.ReadWriteCloser, error) {
		return n.DialFrom(local, addr)
	}
}

// waitHealth polls the client until pred accepts its health or the
// deadline passes.
func waitHealth(t *testing.T, c *ResilientClient, what string, pred func(Health) bool) Health {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h := c.Health(); pred(h) {
			return h
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (health %+v)", what, c.Health())
	return Health{}
}

// fastOpts keeps reconnect timing test-friendly. Jitter is disabled so
// schedules are deterministic.
func fastOpts() ResilientOptions {
	return ResilientOptions{
		CallTimeout:      250 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		JitterFrac:       -1,
		BreakerThreshold: 2,
	}
}

// TestResilientDegradedJournalAndDrain is the end-to-end outage story:
// a partition cuts the client off, the breaker trips, registers resolve
// to provisional ids and queue in the journal, sink-side lookups keep
// working locally — then the partition heals, the journal drains, the
// taints get their real Global IDs, and a *different* client resolves
// them to the same bytes.
func TestResilientDegradedJournalAndDrain(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tree := taint.NewTree()
	c := NewResilientClient(simDialer(n, "app:1", "tm:1"), tree, fastOpts())
	defer c.Close()

	// Healthy path first.
	warm := tree.NewSource("warm", "app:1")
	warmID, err := c.Register(warm)
	if err != nil || warmID == 0 || IsProvisional(warmID) {
		t.Fatalf("healthy register = %d, %v", warmID, err)
	}

	n.Partition("app", "tm")

	// Degraded registers: provisional ids, journaled, intra-node lookup
	// still works. The first register is what discovers the outage — its
	// write fails, the reconnect loop exhausts the breaker, and the call
	// is released into the degraded local path.
	outage := make([]taint.Taint, 4)
	provIDs := make([]uint32, 4)
	for i := range outage {
		outage[i] = tree.NewSource(fmt.Sprintf("outage-%d", i), "app:1")
		id, err := c.Register(outage[i])
		if err != nil {
			t.Fatalf("degraded register %d: %v", i, err)
		}
		if !IsProvisional(id) {
			t.Fatalf("degraded register %d returned non-provisional id %d", i, id)
		}
		provIDs[i] = id
		if outage[i].GlobalID() != 0 {
			t.Fatalf("provisional id leaked onto the taint node: %d", outage[i].GlobalID())
		}
		got, err := c.Lookup(id)
		if err != nil || !taint.SameSet(got, outage[i]) {
			t.Fatalf("degraded lookup of provisional id: %v, %v", got, err)
		}
	}
	if h := c.Health(); !h.Degraded {
		t.Fatalf("client not degraded after registers across a partition: %+v", h)
	}
	// Registering the same taint again must not grow the journal.
	again, err := c.Register(outage[0])
	if err != nil || again != provIDs[0] {
		t.Fatalf("repeat degraded register = %d, %v (want %d)", again, err, provIDs[0])
	}
	if h := c.Health(); h.JournalLen != 4 {
		t.Fatalf("journal holds %d entries, want 4", h.JournalLen)
	}
	// The warm taint is still resolvable from the memo while degraded.
	if got, err := c.Lookup(warmID); err != nil || !taint.SameSet(got, warm) {
		t.Fatalf("degraded lookup of warm id: %v, %v", got, err)
	}
	// An id this node never saw cannot be served degraded.
	if _, err := c.Lookup(9999); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded lookup of unknown id = %v, want ErrDegraded", err)
	}

	n.Heal("app", "tm")
	h := waitHealth(t, c, "drain after heal", func(h Health) bool {
		return h.Connected && !h.Degraded && h.JournalLen == 0
	})
	if h.Journaled != 4 || h.Drained != 4 {
		t.Fatalf("journaled %d / drained %d, want 4/4", h.Journaled, h.Drained)
	}

	// Every outage taint now carries a real Global ID…
	checkTree := taint.NewTree()
	check, err := DialSim(n, "tm:1", checkTree)
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	for i, tt := range outage {
		gid := tt.GlobalID()
		if gid == 0 || IsProvisional(gid) {
			t.Fatalf("outage taint %d has id %d after drain", i, gid)
		}
		// …that a completely separate client resolves to the same taint.
		got, err := check.Lookup(gid)
		if err != nil || !taint.SameSet(got, tt) {
			t.Fatalf("second client lookup of drained id %d: %v, %v", gid, got, err)
		}
		// The provisional id keeps resolving on the original client.
		got, err = c.Lookup(provIDs[i])
		if err != nil || !taint.SameSet(got, tt) {
			t.Fatalf("post-drain lookup of provisional id %d: %v, %v", provIDs[i], got, err)
		}
	}
}

// TestResilientReconnectReplaysBlockedRegister covers the window before
// the breaker trips: a register issued while the connection is down
// waits (it does not error) and completes once the client reconnects.
func TestResilientReconnectReplaysBlockedRegister(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tree := taint.NewTree()
	opt := fastOpts()
	opt.BreakerThreshold = 1 << 30 // never trip: force the waiting path
	c := NewResilientClient(simDialer(n, "app:1", "tm:1"), tree, opt)
	defer c.Close()

	n.Partition("app", "tm")
	tt := tree.NewSource("blocked", "app:1")
	type res struct {
		id  uint32
		err error
	}
	done := make(chan res, 1)
	go func() {
		id, err := c.Register(tt)
		done <- res{id, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("register completed across a partition: %d, %v", r.id, r.err)
	case <-time.After(50 * time.Millisecond):
	}
	n.Heal("app", "tm")
	select {
	case r := <-done:
		if r.err != nil || r.id == 0 || IsProvisional(r.id) {
			t.Fatalf("register after heal = %d, %v", r.id, r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("register still blocked after heal")
	}
}

// TestResilientJournalBound verifies the store-and-forward journal is
// bounded: past JournalLimit, degraded registers fail with
// ErrJournalFull (which is also an ErrDegraded).
func TestResilientJournalBound(t *testing.T) {
	tree := taint.NewTree()
	opt := fastOpts()
	opt.BreakerThreshold = 1
	opt.JournalLimit = 3
	c := NewResilientClient(func() (io.ReadWriteCloser, error) {
		return nil, errors.New("no route")
	}, tree, opt)
	defer c.Close()

	waitHealth(t, c, "breaker trip", func(h Health) bool { return h.Degraded })
	for i := 0; i < 3; i++ {
		if _, err := c.Register(tree.NewSource(fmt.Sprintf("q-%d", i), "n:1")); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	_, err := c.Register(tree.NewSource("overflow", "n:1"))
	if !errors.Is(err, ErrJournalFull) || !errors.Is(err, ErrDegraded) {
		t.Fatalf("register past bound = %v, want ErrJournalFull/ErrDegraded", err)
	}
	// Re-registering an already-journaled taint still succeeds.
	if _, err := c.Register(tree.NewSource("q-0", "n:1")); err != nil {
		t.Fatalf("repeat register at bound: %v", err)
	}
}

// fakeClock records the delays the backoff loop requests and fires them
// immediately, so the schedule is observable without sleeping.
type fakeClock struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (f *fakeClock) Now() time.Time { return time.Unix(0, 0) }

func (f *fakeClock) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	f.delays = append(f.delays, d)
	f.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- time.Unix(0, 0)
	return ch
}

func (f *fakeClock) snapshot() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.delays...)
}

// TestBackoffScheduleWithFakeClock drives the reconnect loop against a
// dial that always fails and a clock that records each requested delay:
// the schedule must double from base to the cap and stay there.
func TestBackoffScheduleWithFakeClock(t *testing.T) {
	clk := &fakeClock{}
	tree := taint.NewTree()
	c := NewResilientClient(func() (io.ReadWriteCloser, error) {
		return nil, errors.New("no route")
	}, tree, ResilientOptions{
		BackoffBase:      10 * time.Millisecond,
		BackoffMax:       80 * time.Millisecond,
		JitterFrac:       -1,
		BreakerThreshold: 1,
		clk:              clk,
	})
	defer c.Close()

	deadline := time.Now().Add(10 * time.Second)
	for len(clk.snapshot()) < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	got := clk.snapshot()
	if len(got) < 6 {
		t.Fatalf("recorded only %d delays", len(got))
	}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("delay %d = %v, want %v (schedule %v)", i, got[i], w, got[:len(want)])
		}
	}
}

// TestBackoffDelayJitterBounds checks the pure schedule helper: jitter
// stays within ±frac of the deterministic value.
func TestBackoffDelayJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 12; attempt++ {
		base := backoffDelay(attempt, 10*time.Millisecond, time.Second, 0, nil)
		for trial := 0; trial < 100; trial++ {
			d := backoffDelay(attempt, 10*time.Millisecond, time.Second, 0.2, rng)
			lo := time.Duration(float64(base) * 0.8)
			hi := time.Duration(float64(base) * 1.2)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
	if d := backoffDelay(50, 10*time.Millisecond, time.Second, 0, nil); d != time.Second {
		t.Fatalf("deep attempt delay = %v, want cap 1s", d)
	}
}

// TestRemoteClientClosedTyped is the regression test for the permanent-
// death bug: once the connection is lost, pending and subsequent calls
// must all fail with an error matching ErrClientClosed — not a bare
// string error a wrapper cannot classify.
func TestRemoteClientClosedTyped(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:1")
	if err != nil {
		t.Fatal(err)
	}
	tree := taint.NewTree()
	c, err := DialSim(n, "tm:1", tree)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Register(tree.NewSource("pre", "n:1")); err != nil {
		t.Fatal(err)
	}

	srv.Close() // kills the connection server-side

	// The demux goroutine notices asynchronously; every failure from
	// here on must carry the typed error.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		_, err := c.Register(tree.NewSource(fmt.Sprintf("post-%d", i), "n:1"))
		if err != nil {
			if !errors.Is(err, ErrClientClosed) {
				t.Fatalf("post-outage register error not typed: %v", err)
			}
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("register kept succeeding after server close")
		}
		time.Sleep(time.Millisecond)
	}
	// And it stays that way (an uncached id, so the memo cannot answer).
	if _, err := c.Lookup(424242); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("lookup after death = %v, want ErrClientClosed", err)
	}
}

// TestRemoteClientCloseIdempotent: double Close must not panic (the
// netsim conn tolerates it, a net.TCPConn does not appreciate double
// Close either) and must return the first result both times.
func TestRemoteClientCloseIdempotent(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialSim(n, "tm:1", taint.NewTree())
	if err != nil {
		t.Fatal(err)
	}
	first := c.Close()
	second := c.Close()
	if first != second {
		t.Fatalf("Close results differ: %v then %v", first, second)
	}
	// User-initiated close is also typed.
	if _, err := c.Lookup(1); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call after Close = %v, want ErrClientClosed", err)
	}
}

// TestCallTimeoutOnStalledConnection: a per-call deadline turns a
// wedged connection (peer alive, socket frozen) into a prompt typed
// error instead of a hang.
func TestCallTimeoutOnStalledConnection(t *testing.T) {
	n := netsim.New()
	srv, err := StartSimServer(n, "tm:1")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := n.Dial("tm:1")
	if err != nil {
		t.Fatal(err)
	}
	tree := taint.NewTree()
	c := newRemoteClientWith(conn, tree, &cache{}, 100*time.Millisecond)
	defer func() {
		n.SetStall(false)
		c.Close()
	}()

	n.SetStall(true)
	start := time.Now()
	_, err = c.Register(tree.NewSource("frozen", "n:1"))
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("register on stalled conn = %v, want ErrCallTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}
