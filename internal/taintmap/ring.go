package taintmap

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// The cluster ring: a consistent-hash mapping from blob content hashes
// to partition owners, plus the replica placement rule.
//
// Each member (one taintmapd instance, one partition) projects ringVnodes
// virtual points onto the 32-bit hash circle; a blob is owned by the
// member whose vnode is the first at or clockwise of hash32(blob). Vnodes
// smooth ownership to within a few percent of uniform and, on membership
// change, move only ~1/N of future registrations to the joiner.
//
// Replica placement is per-PARTITION, not per-key: partition P's
// replicas are the RF-1 members that follow P in partition-index order
// (wrapping). Per-key successor walks would make the replica set of an
// id depend on the blob's hash — unknowable to a client holding only
// the id. Partition-ordered placement keeps lookup routing stateless:
// PartitionOf(id) names the owner, and the replica set follows from the
// ring alone.
const (
	ringVnodes = 256

	// DefaultReplication is the replication factor (owner + copies) a
	// cluster runs at unless configured otherwise.
	DefaultReplication = 2
)

// Member is one server in the ring.
type Member struct {
	Part uint32 // partition index, unique in the ring
	Addr string // dial address of the member's server
}

// Ring is an immutable cluster membership snapshot. Build with NewRing;
// share freely (all methods are read-only).
type Ring struct {
	Epoch   uint64 // monotonically increasing membership version
	RF      int    // replication factor (owner + RF-1 successors)
	members []Member

	points []ringPoint // vnode points, sorted by hash
	byPart map[uint32]Member
}

type ringPoint struct {
	hash uint32
	part uint32
}

// mix32 is the murmur3 32-bit finalizer: a full-avalanche bijection used
// to spread vnode points (whose pre-hash inputs differ in few bits)
// uniformly around the hash circle.
func mix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// NewRing builds a ring over the given members. Partition indices must
// be unique and in range; members are kept in partition order. rf is
// clamped to [1, len(members)].
func NewRing(epoch uint64, rf int, members []Member) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("taintmap: ring with no members")
	}
	if rf < 1 {
		rf = 1
	}
	if rf > len(members) {
		rf = len(members)
	}
	r := &Ring{
		Epoch:   epoch,
		RF:      rf,
		members: append([]Member(nil), members...),
		byPart:  make(map[uint32]Member, len(members)),
	}
	sort.Slice(r.members, func(i, j int) bool { return r.members[i].Part < r.members[j].Part })
	for _, m := range r.members {
		if err := checkPartition(m.Part); err != nil {
			return nil, err
		}
		if _, dup := r.byPart[m.Part]; dup {
			return nil, fmt.Errorf("taintmap: ring has duplicate partition %d", m.Part)
		}
		r.byPart[m.Part] = m
	}
	r.points = make([]ringPoint, 0, len(members)*ringVnodes)
	var key [8]byte
	for _, m := range r.members {
		binary.BigEndian.PutUint32(key[:4], m.Part)
		for v := 0; v < ringVnodes; v++ {
			binary.BigEndian.PutUint32(key[4:], uint32(v))
			// FNV over near-sequential keys clusters; the murmur-style
			// finalizer avalanches the points evenly around the circle.
			r.points = append(r.points, ringPoint{hash: mix32(hash32(key[:])), part: m.Part})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.part < b.part // deterministic tie-break
	})
	return r, nil
}

// Members returns the ring's members in partition order. The caller
// must not mutate the returned slice.
func (r *Ring) Members() []Member { return r.members }

// Member returns the member owning the given partition.
func (r *Ring) Member(part uint32) (Member, bool) {
	m, ok := r.byPart[part]
	return m, ok
}

// Owner returns the partition owning the given content hash: the first
// vnode at or clockwise of h. The binary search is hand-rolled: this
// sits on every registration miss, and sort.Search's closure calls are
// a measurable fraction of the routing cost at that frequency.
func (r *Ring) Owner(h uint32) uint32 {
	points := r.points
	lo, hi := 0, len(points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(points) {
		lo = 0
	}
	return points[lo].part
}

// OwnerOfBlob returns the partition owning a blob's content. A
// single-member ring owns everything, so the degenerate single-server
// deployment skips the content hash and the vnode search entirely —
// the cluster client must cost (almost) nothing over a plain client
// when there is nothing to route between.
func (r *Ring) OwnerOfBlob(blob []byte) uint32 {
	if len(r.members) == 1 {
		return r.members[0].Part
	}
	return r.Owner(hash32(blob))
}

// Replicas returns the partitions holding ids of partition part, owner
// first, then its RF-1 successors in partition-index order (wrapping).
// Works for any in-range part, even one not (or no longer) in the ring:
// ids minted under an older epoch must stay resolvable after the minter
// leaves.
func (r *Ring) Replicas(part uint32) []uint32 {
	n := len(r.members)
	out := make([]uint32, 0, r.RF)
	// Start at the first member with Part >= part (the owner itself when
	// present, its numeric successor when not).
	i := sort.Search(n, func(i int) bool { return r.members[i].Part >= part })
	if i < n && r.members[i].Part == part {
		out = append(out, part)
		i++
	} else {
		out = append(out, part) // keep the (absent) owner first for routing order
	}
	for len(out) < r.RF {
		if i >= n {
			i = 0
		}
		p := r.members[i].Part
		if p != part {
			out = append(out, p)
		}
		i++
	}
	return out
}

// Successors returns the RF-1 partitions the owner of part replicates
// to (empty at RF 1).
func (r *Ring) Successors(part uint32) []uint32 {
	return r.Replicas(part)[1:]
}

// WithMember returns a new ring at epoch+1 with m added (or its address
// updated if the partition is already present), at the same RF cap.
func (r *Ring) WithMember(m Member) (*Ring, error) {
	members := make([]Member, 0, len(r.members)+1)
	for _, old := range r.members {
		if old.Part != m.Part {
			members = append(members, old)
		}
	}
	members = append(members, m)
	return NewRing(r.Epoch+1, r.RF, members)
}

// Ring wire encoding (the payload of the 'g' reply and the 'j'
// request/reply): epoch u64, rf u8, count u8, then per member part u8
// and addr u16-prefixed. Bounded and length-checked like every other
// frame payload.
const maxAddrLen = 1 << 10

// appendMember appends the wire form of one member (the 'j' join
// request payload): part u8, addr u16-prefixed.
func appendMember(buf []byte, m Member) []byte {
	buf = append(buf, byte(m.Part))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Addr)))
	return append(buf, m.Addr...)
}

// parseMember decodes one member encoding, rejecting trailing bytes.
func parseMember(payload []byte) (Member, error) {
	if len(payload) < 3 {
		return Member{}, fmt.Errorf("taintmap: member payload of %d bytes", len(payload))
	}
	part := uint32(payload[0])
	alen := int(binary.BigEndian.Uint16(payload[1:3]))
	if alen > maxAddrLen || len(payload) != 3+alen {
		return Member{}, fmt.Errorf("taintmap: malformed member payload")
	}
	if err := checkPartition(part); err != nil {
		return Member{}, err
	}
	return Member{Part: part, Addr: string(payload[3 : 3+alen])}, nil
}

// appendRing appends the wire form of r to buf.
func appendRing(buf []byte, r *Ring) []byte {
	buf = binary.BigEndian.AppendUint64(buf, r.Epoch)
	buf = append(buf, byte(r.RF), byte(len(r.members)))
	for _, m := range r.members {
		buf = append(buf, byte(m.Part))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Addr)))
		buf = append(buf, m.Addr...)
	}
	return buf
}

// parseRing decodes a ring payload, validating every length.
func parseRing(payload []byte) (*Ring, error) {
	if len(payload) < 10 {
		return nil, fmt.Errorf("taintmap: ring payload too short (%d bytes)", len(payload))
	}
	epoch := binary.BigEndian.Uint64(payload)
	rf := int(payload[8])
	n := int(payload[9])
	payload = payload[10:]
	if n == 0 || n > MaxPartitions {
		return nil, fmt.Errorf("taintmap: ring member count %d out of range", n)
	}
	members := make([]Member, 0, n)
	for i := 0; i < n; i++ {
		if len(payload) < 3 {
			return nil, fmt.Errorf("taintmap: truncated ring member")
		}
		part := uint32(payload[0])
		alen := int(binary.BigEndian.Uint16(payload[1:3]))
		payload = payload[3:]
		if alen > maxAddrLen {
			return nil, fmt.Errorf("taintmap: ring member address length %d exceeds limit", alen)
		}
		if len(payload) < alen {
			return nil, fmt.Errorf("taintmap: truncated ring member address")
		}
		members = append(members, Member{Part: part, Addr: string(payload[:alen])})
		payload = payload[alen:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("taintmap: %d trailing bytes after ring members", len(payload))
	}
	return NewRing(epoch, rf, members)
}
