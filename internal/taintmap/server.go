package taintmap

import (
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

// Acceptor abstracts a stream listener so the same Server runs over the
// simulated network and over real TCP (cmd/taintmapd adapts
// net.Listener).
type Acceptor interface {
	Accept() (io.ReadWriteCloser, error)
	Close() error
}

// Server runs the Taint Map service: it accepts connections and answers
// protocol requests against one shared Store.
type Server struct {
	store       *Store
	acc         Acceptor
	logf        func(format string, args ...any)
	readTimeout time.Duration
	maxConns    int
	node        *ClusterNode
	cost        func(op byte, items int)

	accOnce sync.Once // the acceptor closes once, via Shutdown or Close
	accErr  error

	mu      sync.Mutex
	conns   map[io.Closer]struct{}
	closed  bool
	done    chan struct{}
	started bool
}

// ServerOption configures optional server hardening knobs.
type ServerOption func(*Server)

// WithReadTimeout bounds how long a connection may sit idle or dribble
// a single frame before the server drops it, so silent or wedged peers
// cannot pin server goroutines forever. Zero (the default) disables the
// timeout. Connections whose transport lacks SetReadDeadline are served
// without one.
func WithReadTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.readTimeout = d }
}

// WithMaxConns caps concurrently served connections; arrivals over the
// cap are closed immediately rather than queued, keeping an aggressive
// reconnect storm from exhausting server goroutines. Zero (the default)
// means unlimited.
func WithMaxConns(n int) ServerOption {
	return func(s *Server) { s.maxConns = n }
}

// WithClusterNode makes the server one member of a partitioned Taint
// Map: cluster ops (ring/join/replicate/repair) are answered, and every
// fresh registration is synchronously replicated to the node's ring
// successors before its reply is sent.
func WithClusterNode(n *ClusterNode) ServerOption {
	return func(s *Server) { s.node = n }
}

// WithServiceModel installs a per-request cost hook, called once per
// request with the untagged op byte and the item count (blobs
// registered, ids looked up, entries adopted). The scaling benchmarks
// use it to model a fixed-capacity single-threaded server — this host
// has one CPU, so real parallel speedup cannot be measured directly;
// sleeping under a per-server mutex models N independent machines whose
// modeled service times overlap. Production servers never set it.
func WithServiceModel(cost func(op byte, items int)) ServerOption {
	return func(s *Server) { s.cost = cost }
}

// NewServer builds a server over the given acceptor. logf may be nil to
// disable logging.
func NewServer(store *Store, acc Acceptor, logf func(string, ...any), opts ...ServerOption) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		store: store,
		acc:   acc,
		logf:  logf,
		conns: make(map[io.Closer]struct{}),
		done:  make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Store returns the server's backing store (for stats inspection).
func (s *Server) Store() *Store { return s.store }

// Start launches the accept loop in a background goroutine.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.serve()
}

func (s *Server) serve() {
	defer close(s.done)
	var wg sync.WaitGroup
	for {
		conn, err := s.acc.Accept()
		if err != nil {
			break
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			break
		}
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.mu.Unlock()
			conn.Close()
			s.logf("taintmap: connection refused: %d connections at cap", s.maxConns)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := serveConn(connHost{store: s.store, node: s.node, cost: s.cost}, conn, s.readTimeout); err != nil {
				s.logf("taintmap: connection error: %v", err)
			}
			conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
	wg.Wait()
}

// Close stops accepting, closes live connections, and waits for the
// accept loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		// Only wait for the accept loop if one was ever started; a
		// repeated Close on a never-started server must not block on a
		// done channel nothing will ever close.
		started := s.started
		s.mu.Unlock()
		if started {
			<-s.done
		}
		return nil
	}
	s.closed = true
	started := s.started
	conns := make([]io.Closer, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.closeAcc()
	for _, c := range conns {
		c.Close()
	}
	if started {
		<-s.done
	}
	return err
}

// closeAcc closes the acceptor exactly once, remembering its result so
// Shutdown followed by Close reports a consistent error.
func (s *Server) closeAcc() error {
	s.accOnce.Do(func() { s.accErr = s.acc.Close() })
	return s.accErr
}

// Shutdown drains the server gracefully: it stops accepting, then gives
// in-flight connections up to grace to finish their current requests
// and disconnect before forcing the remainder closed (Close). Servers
// fronted by reconnecting clients should prefer this over Close so a
// restart never cuts a request mid-reply.
func (s *Server) Shutdown(grace time.Duration) error {
	s.closeAcc()
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.conns)
		closed := s.closed
		s.mu.Unlock()
		if n == 0 || closed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return s.Close()
}

// simAcceptor adapts a netsim.Listener to Acceptor.
type simAcceptor struct {
	l *netsim.Listener
}

func (a simAcceptor) Accept() (io.ReadWriteCloser, error) { return a.l.Accept() }
func (a simAcceptor) Close() error                        { return a.l.Close() }

// StartSimServer binds a Taint Map server on the simulated network at
// addr and starts it.
func StartSimServer(net *netsim.Network, addr string) (*Server, error) {
	l, err := net.Listen(addr)
	if err != nil {
		return nil, err
	}
	srv := NewServer(NewStore(), simAcceptor{l: l}, log.Printf)
	srv.Start()
	return srv, nil
}

// simMemberAddr is the canonical simulated address of cluster partition
// part: host "tm<part>" (distinct per member, so the netsim fault plane
// can partition one server away from everything else).
func simMemberAddr(part uint32) string { return fmt.Sprintf("tm%d:1", part) }

// StartSimClusterMember starts (or restarts) one member of a simulated
// cluster: a listener at the member's ring address, a ClusterNode that
// dials peers from the member's own host (so host-level partition cuts
// apply to replication traffic too), and a server over store.
func StartSimClusterMember(network *netsim.Network, ring *Ring, part uint32, store *Store, opts ...ServerOption) (*Server, *ClusterNode, error) {
	self, ok := ring.Member(part)
	if !ok {
		return nil, nil, fmt.Errorf("taintmap: partition %d not in ring", part)
	}
	node, err := NewClusterNode(self, ring.Members(), ring.RF, func(addr string) (io.ReadWriteCloser, error) {
		return network.DialFrom(fmt.Sprintf("tm%d:peer", part), addr)
	})
	if err != nil {
		return nil, nil, err
	}
	l, err := network.Listen(self.Addr)
	if err != nil {
		return nil, nil, err
	}
	srv := NewServer(store, simAcceptor{l: l}, nil, append([]ServerOption{WithClusterNode(node)}, opts...)...)
	srv.Start()
	return srv, node, nil
}

// StartSimCluster brings up an n-member cluster on the simulated
// network at addresses tm0:1 .. tm<n-1>:1, partition i on member i.
func StartSimCluster(network *netsim.Network, n, rf int, opts ...ServerOption) ([]*Server, *Ring, error) {
	members := make([]Member, n)
	for i := range members {
		members[i] = Member{Part: uint32(i), Addr: simMemberAddr(uint32(i))}
	}
	ring, err := NewRing(1, rf, members)
	if err != nil {
		return nil, nil, err
	}
	servers := make([]*Server, n)
	for i := range members {
		store, err := NewPartitionStore(uint32(i))
		if err != nil {
			return nil, nil, err
		}
		srv, _, err := StartSimClusterMember(network, ring, uint32(i), store, opts...)
		if err != nil {
			for _, s := range servers[:i] {
				s.Close()
			}
			return nil, nil, err
		}
		servers[i] = srv
	}
	return servers, ring, nil
}

// DialSimCluster connects a ClusterClient to a simulated cluster from
// the given local host.
func DialSimCluster(network *netsim.Network, local string, ring *Ring, tree *taint.Tree, opt ClusterOptions) (*ClusterClient, error) {
	return NewClusterClient(ring, func(addr string) (io.ReadWriteCloser, error) {
		return network.DialFrom(local, addr)
	}, tree, opt)
}

// DialSim connects a RemoteClient to a Taint Map server on the simulated
// network, resolving taints into tree.
func DialSim(net *netsim.Network, addr string, tree *taint.Tree) (*RemoteClient, error) {
	conn, err := net.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewRemoteClient(conn, tree), nil
}
