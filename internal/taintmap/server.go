package taintmap

import (
	"io"
	"log"
	"sync"
	"time"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

// Acceptor abstracts a stream listener so the same Server runs over the
// simulated network and over real TCP (cmd/taintmapd adapts
// net.Listener).
type Acceptor interface {
	Accept() (io.ReadWriteCloser, error)
	Close() error
}

// Server runs the Taint Map service: it accepts connections and answers
// protocol requests against one shared Store.
type Server struct {
	store       *Store
	acc         Acceptor
	logf        func(format string, args ...any)
	readTimeout time.Duration
	maxConns    int

	accOnce sync.Once // the acceptor closes once, via Shutdown or Close
	accErr  error

	mu      sync.Mutex
	conns   map[io.Closer]struct{}
	closed  bool
	done    chan struct{}
	started bool
}

// ServerOption configures optional server hardening knobs.
type ServerOption func(*Server)

// WithReadTimeout bounds how long a connection may sit idle or dribble
// a single frame before the server drops it, so silent or wedged peers
// cannot pin server goroutines forever. Zero (the default) disables the
// timeout. Connections whose transport lacks SetReadDeadline are served
// without one.
func WithReadTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.readTimeout = d }
}

// WithMaxConns caps concurrently served connections; arrivals over the
// cap are closed immediately rather than queued, keeping an aggressive
// reconnect storm from exhausting server goroutines. Zero (the default)
// means unlimited.
func WithMaxConns(n int) ServerOption {
	return func(s *Server) { s.maxConns = n }
}

// NewServer builds a server over the given acceptor. logf may be nil to
// disable logging.
func NewServer(store *Store, acc Acceptor, logf func(string, ...any), opts ...ServerOption) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		store: store,
		acc:   acc,
		logf:  logf,
		conns: make(map[io.Closer]struct{}),
		done:  make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Store returns the server's backing store (for stats inspection).
func (s *Server) Store() *Store { return s.store }

// Start launches the accept loop in a background goroutine.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.serve()
}

func (s *Server) serve() {
	defer close(s.done)
	var wg sync.WaitGroup
	for {
		conn, err := s.acc.Accept()
		if err != nil {
			break
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			break
		}
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.mu.Unlock()
			conn.Close()
			s.logf("taintmap: connection refused: %d connections at cap", s.maxConns)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := serveConn(s.store, conn, s.readTimeout); err != nil {
				s.logf("taintmap: connection error: %v", err)
			}
			conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
	wg.Wait()
}

// Close stops accepting, closes live connections, and waits for the
// accept loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		// Only wait for the accept loop if one was ever started; a
		// repeated Close on a never-started server must not block on a
		// done channel nothing will ever close.
		started := s.started
		s.mu.Unlock()
		if started {
			<-s.done
		}
		return nil
	}
	s.closed = true
	started := s.started
	conns := make([]io.Closer, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.closeAcc()
	for _, c := range conns {
		c.Close()
	}
	if started {
		<-s.done
	}
	return err
}

// closeAcc closes the acceptor exactly once, remembering its result so
// Shutdown followed by Close reports a consistent error.
func (s *Server) closeAcc() error {
	s.accOnce.Do(func() { s.accErr = s.acc.Close() })
	return s.accErr
}

// Shutdown drains the server gracefully: it stops accepting, then gives
// in-flight connections up to grace to finish their current requests
// and disconnect before forcing the remainder closed (Close). Servers
// fronted by reconnecting clients should prefer this over Close so a
// restart never cuts a request mid-reply.
func (s *Server) Shutdown(grace time.Duration) error {
	s.closeAcc()
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.conns)
		closed := s.closed
		s.mu.Unlock()
		if n == 0 || closed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return s.Close()
}

// simAcceptor adapts a netsim.Listener to Acceptor.
type simAcceptor struct {
	l *netsim.Listener
}

func (a simAcceptor) Accept() (io.ReadWriteCloser, error) { return a.l.Accept() }
func (a simAcceptor) Close() error                        { return a.l.Close() }

// StartSimServer binds a Taint Map server on the simulated network at
// addr and starts it.
func StartSimServer(net *netsim.Network, addr string) (*Server, error) {
	l, err := net.Listen(addr)
	if err != nil {
		return nil, err
	}
	srv := NewServer(NewStore(), simAcceptor{l: l}, log.Printf)
	srv.Start()
	return srv, nil
}

// DialSim connects a RemoteClient to a Taint Map server on the simulated
// network, resolving taints into tree.
func DialSim(net *netsim.Network, addr string, tree *taint.Tree) (*RemoteClient, error) {
	conn, err := net.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewRemoteClient(conn, tree), nil
}
