package taintmap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

// ErrOverloaded reports a request or connection shed by the server's
// admission control: the service is alive but at capacity, and the
// caller should back off, hedge to a replica, or fall into the
// journaled degraded path rather than retry immediately. It crosses the
// wire as a typed error-response marker (see serverErr), so errors.Is
// matches on the client side too.
var ErrOverloaded = errors.New("taintmap: server overloaded")

// admission is the server's request-level admission controller: a
// bounded concurrency gate with a bounded FIFO-ish wait queue. Up to
// maxActive requests execute; up to maxWait more wait their turn; any
// further request is shed with an ErrOverloaded reply instead of
// silently queueing behind an unbounded backlog. Shedding at the
// *request* level keeps the connection itself healthy — a brownout
// degrades throughput, not liveness.
type admission struct {
	mu        sync.Mutex
	cond      *sync.Cond
	active    int
	waiting   int
	maxActive int
	maxWait   int

	admitted atomic.Int64
	queued   atomic.Int64
	shed     atomic.Int64
}

func newAdmission(maxActive, maxWait int) *admission {
	a := &admission{maxActive: maxActive, maxWait: maxWait}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// admit blocks until a service slot is free, or reports false when the
// wait queue is full (the request must be shed).
func (a *admission) admit() bool {
	a.mu.Lock()
	if a.active < a.maxActive && a.waiting == 0 {
		a.active++
		a.mu.Unlock()
		a.admitted.Add(1)
		return true
	}
	if a.waiting >= a.maxWait {
		a.mu.Unlock()
		a.shed.Add(1)
		return false
	}
	a.waiting++
	a.queued.Add(1)
	for a.active >= a.maxActive {
		a.cond.Wait()
	}
	a.waiting--
	a.active++
	a.mu.Unlock()
	a.admitted.Add(1)
	return true
}

func (a *admission) release() {
	a.mu.Lock()
	a.active--
	a.mu.Unlock()
	a.cond.Signal()
}

// Acceptor abstracts a stream listener so the same Server runs over the
// simulated network and over real TCP (cmd/taintmapd adapts
// net.Listener).
type Acceptor interface {
	Accept() (io.ReadWriteCloser, error)
	Close() error
}

// Server runs the Taint Map service: it accepts connections and answers
// protocol requests against one shared Store.
type Server struct {
	store       *Store
	acc         Acceptor
	logf        func(format string, args ...any)
	readTimeout time.Duration
	maxConns    int
	node        *ClusterNode
	cost        func(op byte, items int)
	adm         *admission

	accOnce sync.Once // the acceptor closes once, via Shutdown or Close
	accErr  error

	mu      sync.Mutex
	conns   map[io.Closer]struct{}
	closed  bool
	done    chan struct{}
	started bool

	accepted  atomic.Int64
	refused   atomic.Int64
	shedConns atomic.Int64
	shedding  atomic.Int64 // brownout goroutines currently live
}

// ServerOption configures optional server hardening knobs.
type ServerOption func(*Server)

// WithReadTimeout bounds how long a connection may sit idle or dribble
// a single frame before the server drops it, so silent or wedged peers
// cannot pin server goroutines forever. Zero (the default) disables the
// timeout. Connections whose transport lacks SetReadDeadline are served
// without one.
func WithReadTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.readTimeout = d }
}

// WithMaxConns caps concurrently served connections. Arrivals over the
// cap enter brownout mode: a bounded pool of shedder goroutines answers
// their requests with ErrOverloaded for a short grace (so well-behaved
// clients learn to back off instead of seeing a silent close and
// re-dialing immediately), then closes them; arrivals beyond even the
// shedder pool are closed outright. Zero (the default) means unlimited.
func WithMaxConns(n int) ServerOption {
	return func(s *Server) { s.maxConns = n }
}

// WithAdmission bounds request-level concurrency: at most maxActive
// requests execute at once, at most maxWait more wait in queue, and
// anything beyond that is answered with ErrOverloaded instead of
// stalling its connection — load shedding with an explicit signal,
// replacing an unbounded implicit queue of blocked goroutines.
// maxActive <= 0 disables admission control (the default). maxWait < 0
// defaults to 4x maxActive.
func WithAdmission(maxActive, maxWait int) ServerOption {
	return func(s *Server) {
		if maxActive <= 0 {
			s.adm = nil
			return
		}
		if maxWait < 0 {
			maxWait = 4 * maxActive
		}
		s.adm = newAdmission(maxActive, maxWait)
	}
}

// WithClusterNode makes the server one member of a partitioned Taint
// Map: cluster ops (ring/join/replicate/repair) are answered, and every
// fresh registration is synchronously replicated to the node's ring
// successors before its reply is sent.
func WithClusterNode(n *ClusterNode) ServerOption {
	return func(s *Server) { s.node = n }
}

// WithServiceModel installs a per-request cost hook, called once per
// request with the untagged op byte and the item count (blobs
// registered, ids looked up, entries adopted). The scaling benchmarks
// use it to model a fixed-capacity single-threaded server — this host
// has one CPU, so real parallel speedup cannot be measured directly;
// sleeping under a per-server mutex models N independent machines whose
// modeled service times overlap. Production servers never set it.
func WithServiceModel(cost func(op byte, items int)) ServerOption {
	return func(s *Server) { s.cost = cost }
}

// NewServer builds a server over the given acceptor. logf may be nil to
// disable logging.
func NewServer(store *Store, acc Acceptor, logf func(string, ...any), opts ...ServerOption) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		store: store,
		acc:   acc,
		logf:  logf,
		conns: make(map[io.Closer]struct{}),
		done:  make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Store returns the server's backing store (for stats inspection).
func (s *Server) Store() *Store { return s.store }

// Start launches the accept loop in a background goroutine.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.serve()
}

func (s *Server) serve() {
	defer close(s.done)
	var wg sync.WaitGroup
	for {
		conn, err := s.acc.Accept()
		if err != nil {
			break
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			break
		}
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			s.mu.Unlock()
			// Brownout instead of a silent close: a refused client would
			// re-dial immediately, feeding the very storm the cap exists
			// to survive. A bounded pool of shedder goroutines answers
			// over-cap connections with ErrOverloaded for a short grace —
			// an explicit back-off signal — then closes them. Beyond even
			// the shedder pool, arrivals are closed outright.
			pool := int64(s.maxConns)
			if pool < 8 {
				pool = 8
			}
			if s.shedding.Load() >= pool {
				conn.Close()
				s.refused.Add(1)
				s.logf("taintmap: connection refused: %d connections at cap", s.maxConns)
				continue
			}
			s.shedding.Add(1)
			s.shedConns.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer s.shedding.Add(-1)
				shedConn(conn, brownoutGrace)
			}()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)

		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := serveConn(connHost{store: s.store, node: s.node, cost: s.cost, adm: s.adm}, conn, s.readTimeout); err != nil {
				s.logf("taintmap: connection error: %v", err)
			}
			conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
	wg.Wait()
}

// brownoutGrace bounds how long one over-cap connection stays in
// brownout (answering ErrOverloaded) before being closed.
const brownoutGrace = 250 * time.Millisecond

// brownoutMaxFrames caps the requests one brownout connection may have
// answered before it is closed regardless of the grace.
const brownoutMaxFrames = 64

// shedConn serves one over-cap connection in brownout mode: every
// request (either protocol generation) is answered with an
// ErrOverloaded error response, payloads are discarded unexecuted, and
// the connection closes at the grace deadline or the frame cap,
// whichever lands first. On transports without read deadlines a silent
// peer can hold its shedder slot past the grace; the pool bound in
// serve() contains that.
func shedConn(conn io.ReadWriteCloser, grace time.Duration) {
	defer conn.Close()
	rd, _ := conn.(readDeadliner)
	deadline := time.Now().Add(grace)
	br := bufio.NewReaderSize(conn, 4<<10)
	bw := bufio.NewWriterSize(conn, 4<<10)
	overload := fmt.Appendf(nil, "%v: connection over cap", ErrOverloaded)
	for frames := 0; frames < brownoutMaxFrames && time.Now().Before(deadline); frames++ {
		if rd != nil {
			rd.SetReadDeadline(deadline)
		}
		op, err := br.ReadByte()
		if err != nil {
			break
		}
		_, tagged := taggedBase(op)
		var hdr [8]byte
		var tag, n uint32
		if tagged {
			if _, err := io.ReadFull(br, hdr[:8]); err != nil {
				break
			}
			tag = binary.BigEndian.Uint32(hdr[0:4])
			n = binary.BigEndian.Uint32(hdr[4:8])
		} else {
			if _, err := io.ReadFull(br, hdr[:4]); err != nil {
				break
			}
			n = binary.BigEndian.Uint32(hdr[0:4])
		}
		if n > maxFrame {
			break
		}
		if _, err := io.CopyN(io.Discard, br, int64(n)); err != nil {
			break
		}
		if tagged {
			if writeTaggedFrame(bw, statusTaggedErr, tag, overload) != nil {
				break
			}
		} else {
			var h [5]byte
			h[0] = statusErr
			binary.BigEndian.PutUint32(h[1:5], uint32(len(overload)))
			if _, err := bw.Write(h[:]); err != nil {
				break
			}
			if _, err := bw.Write(overload); err != nil {
				break
			}
		}
		if br.Buffered() == 0 {
			if bw.Flush() != nil {
				break
			}
		}
	}
	bw.Flush()
}

// ServerStats is a snapshot of the server's admission and shed
// counters, surfaced by taintmapd's -stats-every loop.
type ServerStats struct {
	ActiveConns  int   // connections currently in full service
	Accepted     int64 // connections accepted into full service
	ShedConns    int64 // connections browned out with ErrOverloaded replies
	RefusedConns int64 // connections closed outright (shedder pool full)
	AdmittedReqs int64 // requests admitted by the request gate
	QueuedReqs   int64 // admitted requests that first waited for a slot
	ShedReqs     int64 // requests answered ErrOverloaded by the gate
}

// Stats returns the server's admission/shed counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{ActiveConns: len(s.conns)}
	s.mu.Unlock()
	st.Accepted = s.accepted.Load()
	st.ShedConns = s.shedConns.Load()
	st.RefusedConns = s.refused.Load()
	if s.adm != nil {
		st.AdmittedReqs = s.adm.admitted.Load()
		st.QueuedReqs = s.adm.queued.Load()
		st.ShedReqs = s.adm.shed.Load()
	}
	return st
}

// Close stops accepting, closes live connections, and waits for the
// accept loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		// Only wait for the accept loop if one was ever started; a
		// repeated Close on a never-started server must not block on a
		// done channel nothing will ever close.
		started := s.started
		s.mu.Unlock()
		if started {
			<-s.done
		}
		return nil
	}
	s.closed = true
	started := s.started
	conns := make([]io.Closer, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.closeAcc()
	for _, c := range conns {
		c.Close()
	}
	if started {
		<-s.done
	}
	return err
}

// closeAcc closes the acceptor exactly once, remembering its result so
// Shutdown followed by Close reports a consistent error.
func (s *Server) closeAcc() error {
	s.accOnce.Do(func() { s.accErr = s.acc.Close() })
	return s.accErr
}

// Shutdown drains the server gracefully: it stops accepting, then gives
// in-flight connections up to grace to finish their current requests
// and disconnect before forcing the remainder closed (Close). Servers
// fronted by reconnecting clients should prefer this over Close so a
// restart never cuts a request mid-reply.
func (s *Server) Shutdown(grace time.Duration) error {
	s.closeAcc()
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.conns)
		closed := s.closed
		s.mu.Unlock()
		if n == 0 || closed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return s.Close()
}

// simAcceptor adapts a netsim.Listener to Acceptor.
type simAcceptor struct {
	l *netsim.Listener
}

func (a simAcceptor) Accept() (io.ReadWriteCloser, error) { return a.l.Accept() }
func (a simAcceptor) Close() error                        { return a.l.Close() }

// StartSimServer binds a Taint Map server on the simulated network at
// addr and starts it.
func StartSimServer(net *netsim.Network, addr string) (*Server, error) {
	l, err := net.Listen(addr)
	if err != nil {
		return nil, err
	}
	srv := NewServer(NewStore(), simAcceptor{l: l}, log.Printf)
	srv.Start()
	return srv, nil
}

// simMemberAddr is the canonical simulated address of cluster partition
// part: host "tm<part>" (distinct per member, so the netsim fault plane
// can partition one server away from everything else).
func simMemberAddr(part uint32) string { return fmt.Sprintf("tm%d:1", part) }

// StartSimClusterMember starts (or restarts) one member of a simulated
// cluster: a listener at the member's ring address, a ClusterNode that
// dials peers from the member's own host (so host-level partition cuts
// apply to replication traffic too), and a server over store.
func StartSimClusterMember(network *netsim.Network, ring *Ring, part uint32, store *Store, opts ...ServerOption) (*Server, *ClusterNode, error) {
	self, ok := ring.Member(part)
	if !ok {
		return nil, nil, fmt.Errorf("taintmap: partition %d not in ring", part)
	}
	node, err := NewClusterNode(self, ring.Members(), ring.RF, func(addr string) (io.ReadWriteCloser, error) {
		return network.DialFrom(fmt.Sprintf("tm%d:peer", part), addr)
	})
	if err != nil {
		return nil, nil, err
	}
	l, err := network.Listen(self.Addr)
	if err != nil {
		return nil, nil, err
	}
	srv := NewServer(store, simAcceptor{l: l}, nil, append([]ServerOption{WithClusterNode(node)}, opts...)...)
	srv.Start()
	return srv, node, nil
}

// StartSimCluster brings up an n-member cluster on the simulated
// network at addresses tm0:1 .. tm<n-1>:1, partition i on member i.
func StartSimCluster(network *netsim.Network, n, rf int, opts ...ServerOption) ([]*Server, *Ring, error) {
	members := make([]Member, n)
	for i := range members {
		members[i] = Member{Part: uint32(i), Addr: simMemberAddr(uint32(i))}
	}
	ring, err := NewRing(1, rf, members)
	if err != nil {
		return nil, nil, err
	}
	servers := make([]*Server, n)
	for i := range members {
		store, err := NewPartitionStore(uint32(i))
		if err != nil {
			return nil, nil, err
		}
		srv, _, err := StartSimClusterMember(network, ring, uint32(i), store, opts...)
		if err != nil {
			for _, s := range servers[:i] {
				s.Close()
			}
			return nil, nil, err
		}
		servers[i] = srv
	}
	return servers, ring, nil
}

// DialSimCluster connects a ClusterClient to a simulated cluster from
// the given local host.
func DialSimCluster(network *netsim.Network, local string, ring *Ring, tree *taint.Tree, opt ClusterOptions) (*ClusterClient, error) {
	return NewClusterClient(ring, func(addr string) (io.ReadWriteCloser, error) {
		return network.DialFrom(local, addr)
	}, tree, opt)
}

// DialSim connects a RemoteClient to a Taint Map server on the simulated
// network, resolving taints into tree.
func DialSim(net *netsim.Network, addr string, tree *taint.Tree) (*RemoteClient, error) {
	conn, err := net.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewRemoteClient(conn, tree), nil
}
