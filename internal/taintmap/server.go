package taintmap

import (
	"io"
	"log"
	"sync"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

// Acceptor abstracts a stream listener so the same Server runs over the
// simulated network and over real TCP (cmd/taintmapd adapts
// net.Listener).
type Acceptor interface {
	Accept() (io.ReadWriteCloser, error)
	Close() error
}

// Server runs the Taint Map service: it accepts connections and answers
// protocol requests against one shared Store.
type Server struct {
	store *Store
	acc   Acceptor
	logf  func(format string, args ...any)

	mu      sync.Mutex
	conns   map[io.Closer]struct{}
	closed  bool
	done    chan struct{}
	started bool
}

// NewServer builds a server over the given acceptor. logf may be nil to
// disable logging.
func NewServer(store *Store, acc Acceptor, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		store: store,
		acc:   acc,
		logf:  logf,
		conns: make(map[io.Closer]struct{}),
		done:  make(chan struct{}),
	}
}

// Store returns the server's backing store (for stats inspection).
func (s *Server) Store() *Store { return s.store }

// Start launches the accept loop in a background goroutine.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.serve()
}

func (s *Server) serve() {
	defer close(s.done)
	var wg sync.WaitGroup
	for {
		conn, err := s.acc.Accept()
		if err != nil {
			break
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			break
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ServeConn(s.store, conn); err != nil {
				s.logf("taintmap: connection error: %v", err)
			}
			conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
	wg.Wait()
}

// Close stops accepting, closes live connections, and waits for the
// accept loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		// Only wait for the accept loop if one was ever started; a
		// repeated Close on a never-started server must not block on a
		// done channel nothing will ever close.
		started := s.started
		s.mu.Unlock()
		if started {
			<-s.done
		}
		return nil
	}
	s.closed = true
	started := s.started
	conns := make([]io.Closer, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.acc.Close()
	for _, c := range conns {
		c.Close()
	}
	if started {
		<-s.done
	}
	return err
}

// simAcceptor adapts a netsim.Listener to Acceptor.
type simAcceptor struct {
	l *netsim.Listener
}

func (a simAcceptor) Accept() (io.ReadWriteCloser, error) { return a.l.Accept() }
func (a simAcceptor) Close() error                        { return a.l.Close() }

// StartSimServer binds a Taint Map server on the simulated network at
// addr and starts it.
func StartSimServer(net *netsim.Network, addr string) (*Server, error) {
	l, err := net.Listen(addr)
	if err != nil {
		return nil, err
	}
	srv := NewServer(NewStore(), simAcceptor{l: l}, log.Printf)
	srv.Start()
	return srv, nil
}

// DialSim connects a RemoteClient to a Taint Map server on the simulated
// network, resolving taints into tree.
func DialSim(net *netsim.Network, addr string, tree *taint.Tree) (*RemoteClient, error) {
	conn, err := net.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewRemoteClient(conn, tree), nil
}
