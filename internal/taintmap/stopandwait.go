package taintmap

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"dista/internal/core/taint"
)

// StopAndWaitClient talks to a Taint Map server with the original
// untagged ops ('R','L','B','M','S'), one serialized request/response
// round trip at a time. It is kept as the compatibility client for
// legacy peers and as the measured baseline the multiplexed
// RemoteClient is compared against; new code should use RemoteClient.
type StopAndWaitClient struct {
	mu   sync.Mutex
	conn io.ReadWriteCloser
	tree *taint.Tree
	memo cache
}

var _ Client = (*StopAndWaitClient)(nil)

// NewStopAndWaitClient wraps an established connection to a Taint Map
// server, speaking the legacy untagged protocol.
func NewStopAndWaitClient(conn io.ReadWriteCloser, tree *taint.Tree) *StopAndWaitClient {
	return &StopAndWaitClient{conn: conn, tree: tree}
}

// Register implements Client.
func (c *StopAndWaitClient) Register(t taint.Taint) (uint32, error) {
	if t.Empty() {
		return 0, nil
	}
	if id := t.GlobalID(); id != 0 {
		return id, nil
	}
	blob, err := taint.MarshalTaint(t)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	reply, err := roundTrip(c.conn, opRegister, blob)
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if len(reply) != 4 {
		return 0, fmt.Errorf("taintmap: register reply of %d bytes", len(reply))
	}
	id := binary.BigEndian.Uint32(reply)
	t.SetGlobalID(id)
	c.memo.put(id, t)
	return id, nil
}

// Lookup implements Client.
func (c *StopAndWaitClient) Lookup(id uint32) (taint.Taint, error) {
	if id == 0 {
		return taint.Taint{}, nil
	}
	if t, ok := c.memo.get(id); ok {
		return t, nil
	}
	c.mu.Lock()
	blob, err := roundTrip(c.conn, opLookup, binary.BigEndian.AppendUint32(nil, id))
	c.mu.Unlock()
	if err != nil {
		return taint.Taint{}, err
	}
	t, err := c.tree.UnmarshalTaint(blob)
	if err != nil {
		return taint.Taint{}, err
	}
	t.SetGlobalID(id)
	c.memo.put(id, t)
	return t, nil
}

// RegisterBatch implements Client: all unregistered distinct taints go
// to the server in one 'B' round trip per frame-sized chunk.
func (c *StopAndWaitClient) RegisterBatch(ts []taint.Taint) ([]uint32, error) {
	ids, pending, posOf := collectRegister(ts)
	if len(pending) == 0 {
		return ids, nil
	}
	blobs, err := marshalAll(pending)
	if err != nil {
		return nil, err
	}
	chunks, err := splitBlobChunks(blobs)
	if err != nil {
		return nil, err
	}
	fresh := make([]uint32, 0, len(pending))
	for _, chunk := range chunks {
		c.mu.Lock()
		reply, err := roundTrip(c.conn, opRegisterBatch, appendBlobList(nil, chunk))
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
		got, err := parseIDList(reply)
		if err != nil || len(got) != len(chunk) {
			return nil, fmt.Errorf("taintmap: register batch reply of %d bytes", len(reply))
		}
		fresh = append(fresh, got...)
	}
	adoptFresh(&c.memo, ids, fresh, pending, posOf)
	return ids, nil
}

// LookupBatch implements Client: all memo misses go to the server in
// one 'M' round trip per frame-sized chunk.
func (c *StopAndWaitClient) LookupBatch(ids []uint32) ([]taint.Taint, error) {
	ts, missing := c.memo.splitBatch(ids)
	if len(missing) == 0 {
		return ts, nil
	}
	blobs := make([][]byte, 0, len(missing))
	for _, chunk := range splitIDChunks(missing) {
		c.mu.Lock()
		reply, err := roundTrip(c.conn, opLookupBatch, appendIDList(nil, chunk))
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
		got, err := parseBlobList(reply)
		if err != nil {
			return nil, err
		}
		blobs = append(blobs, got...)
	}
	if err := adoptBlobs(c.tree, &c.memo, ts, ids, missing, blobs); err != nil {
		return nil, err
	}
	return ts, nil
}

// Stats fetches the server-side counters.
func (c *StopAndWaitClient) Stats() (Stats, error) {
	c.mu.Lock()
	reply, err := roundTrip(c.conn, opStats, nil)
	c.mu.Unlock()
	if err != nil {
		return Stats{}, err
	}
	if len(reply) != 24 {
		return Stats{}, fmt.Errorf("taintmap: stats reply of %d bytes", len(reply))
	}
	return Stats{
		GlobalTaints:  int(binary.BigEndian.Uint64(reply[0:8])),
		Registrations: int64(binary.BigEndian.Uint64(reply[8:16])),
		Lookups:       int64(binary.BigEndian.Uint64(reply[16:24])),
	}, nil
}

// Close implements Client.
func (c *StopAndWaitClient) Close() error { return c.conn.Close() }
