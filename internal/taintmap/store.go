// Package taintmap implements DisTA's Taint Map (DSN'22 §III-D-2): the
// independent component that assigns a unique Global ID to every taint
// that crosses node boundaries and serves the reverse mapping. With it,
// nodes ship a fixed-length Global ID next to every data byte instead of
// the (variable, >200-byte) serialized taint, solving both the bandwidth
// and the mismatched-length problems the paper identifies.
//
// The package provides the id-allocation Store, a request/response wire
// protocol usable over any stream (netsim conns or real TCP), a Server,
// and three Client implementations: Remote (multiplexed, over a
// connection), StopAndWait (serialized, the legacy untagged protocol)
// and Local (in-process, for tests and single-process simulations).
package taintmap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrUnknownGlobalID is returned by lookups of ids never allocated.
var ErrUnknownGlobalID = errors.New("taintmap: unknown global id")

// Stats describes a Store's usage, for the SDT-vs-SIM analysis (§V-F).
type Stats struct {
	GlobalTaints  int   // distinct taints registered (== highest id)
	Registrations int64 // total Register calls served, including duplicates
	Lookups       int64 // total Lookup calls served
}

// Sharding and page-table geometry. The blob->id direction is split
// across storeShards independently locked maps (a register only
// contends with registers hashing to the same shard); the id->blob
// direction is a lock-free append-only page table so lookups never take
// any lock.
const (
	storeShards = 16

	pageBits = 10 // ids per page
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// shard is one slice of the blob->id map.
type shard struct {
	mu     sync.Mutex
	byBlob map[string]uint32
}

// page is one fixed-size block of the id->blob table. Slots are
// published with an atomic store after the id is allocated and before
// the id is revealed to any caller, so a reader holding a legitimately
// obtained id always finds its slot non-nil.
type page [pageSize]atomic.Pointer[string]

// Store is the Taint Map's state: serialized-taint blob <-> Global ID.
// Ids start at 1; 0 means "untainted" on the wire. Safe for concurrent
// use; lookups are lock-free.
type Store struct {
	shards [storeShards]shard

	// pages points at a grow-only slice of page pointers; readers
	// atomically load the slice and index it without locking. growMu
	// serializes growth (and Reset, which swaps the whole table).
	pages  atomic.Pointer[[]*page]
	growMu sync.Mutex

	next          atomic.Uint32 // last allocated id
	registrations atomic.Int64
	lookups       atomic.Int64
}

// NewStore returns an empty Store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].byBlob = make(map[string]uint32)
	}
	return s
}

// shardOf picks the shard for a blob (FNV-1a over its bytes).
func shardOf(blob []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range blob {
		h = (h ^ uint32(c)) * 16777619
	}
	return h & (storeShards - 1)
}

// RegisterBlob returns the Global ID for the given serialized taint,
// allocating a fresh id on first sight. Registration is idempotent: the
// same blob always maps to the same id.
func (s *Store) RegisterBlob(blob []byte) uint32 {
	s.registrations.Add(1)
	sh := &s.shards[shardOf(blob)]
	sh.mu.Lock()
	if id, ok := sh.byBlob[string(blob)]; ok { // zero-copy map probe
		sh.mu.Unlock()
		return id
	}
	// The one copy of the blob; the shard's key and the page table's
	// slot share it.
	key := string(blob)
	id := s.next.Add(1)
	s.publish(id, &key)
	sh.byBlob[key] = id
	sh.mu.Unlock()
	return id
}

// RegisterBlobs registers every blob, returning the parallel id slice —
// the server half of the batch protocol op. With the sharded store each
// blob only locks its own shard.
func (s *Store) RegisterBlobs(blobs [][]byte) []uint32 {
	ids := make([]uint32, len(blobs))
	for i, blob := range blobs {
		ids[i] = s.RegisterBlob(blob)
	}
	return ids
}

// publish installs id->key into the page table, growing it if needed.
// Must complete before id escapes to any caller.
func (s *Store) publish(id uint32, key *string) {
	pi := int(id) >> pageBits
	pages := s.pages.Load()
	if pages == nil || pi >= len(*pages) {
		s.growMu.Lock()
		pages = s.pages.Load()
		if pages == nil || pi >= len(*pages) {
			var grown []*page
			if pages != nil {
				grown = append(grown, *pages...)
			}
			for pi >= len(grown) {
				grown = append(grown, new(page))
			}
			s.pages.Store(&grown)
			pages = &grown
		}
		s.growMu.Unlock()
	}
	(*pages)[pi][int(id)&pageMask].Store(key)
}

// lookupStr resolves id to its interned blob string without locking or
// copying. ok is false for ids never published.
func (s *Store) lookupStr(id uint32) (string, bool) {
	s.lookups.Add(1)
	pages := s.pages.Load()
	if pages == nil {
		return "", false
	}
	pi := int(id) >> pageBits
	if pi >= len(*pages) {
		return "", false
	}
	p := (*pages)[pi][int(id)&pageMask].Load()
	if p == nil {
		return "", false
	}
	return *p, true
}

// LookupBlob returns the serialized taint registered under id. The
// returned slice is the caller's to keep. Lock-free.
func (s *Store) LookupBlob(id uint32) ([]byte, error) {
	blob, ok := s.lookupStr(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownGlobalID, id)
	}
	return []byte(blob), nil
}

// LookupBlobs resolves every id, failing on the first unknown id — the
// server half of the batch protocol op. Lock-free.
func (s *Store) LookupBlobs(ids []uint32) ([][]byte, error) {
	blobs := make([][]byte, len(ids))
	for i, id := range ids {
		blob, err := s.LookupBlob(id)
		if err != nil {
			return nil, err
		}
		blobs[i] = blob
	}
	return blobs, nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		GlobalTaints:  int(s.next.Load()),
		Registrations: s.registrations.Load(),
		Lookups:       s.lookups.Load(),
	}
}

// Reset drops all state, returning the store to empty. Concurrent
// readers see either the old or the new (empty) table. Lock order
// matches RegisterBlob (shard, then growMu): all shard locks are held
// first, which also quiesces every page-table writer.
func (s *Store) Reset() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	s.growMu.Lock()
	for i := range s.shards {
		s.shards[i].byBlob = make(map[string]uint32)
	}
	s.pages.Store(nil)
	s.next.Store(0)
	s.registrations.Store(0)
	s.lookups.Store(0)
	s.growMu.Unlock()
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}
