// Package taintmap implements DisTA's Taint Map (DSN'22 §III-D-2): the
// independent component that assigns a unique Global ID to every taint
// that crosses node boundaries and serves the reverse mapping. With it,
// nodes ship a fixed-length Global ID next to every data byte instead of
// the (variable, >200-byte) serialized taint, solving both the bandwidth
// and the mismatched-length problems the paper identifies.
//
// The package provides the id-allocation Store, a request/response wire
// protocol usable over any stream (netsim conns or real TCP), a Server,
// and several Client implementations: Remote (multiplexed, over a
// connection), Resilient (reconnecting, degraded-capable), Cluster
// (partitioned + replicated across N servers), StopAndWait (serialized,
// the legacy untagged protocol) and Local (in-process, for tests and
// single-process simulations).
package taintmap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrUnknownGlobalID is returned by lookups of ids never allocated.
var ErrUnknownGlobalID = errors.New("taintmap: unknown global id")

// Stats describes a Store's usage, for the SDT-vs-SIM analysis (§V-F).
type Stats struct {
	GlobalTaints  int   // distinct taints registered (== highest id)
	Registrations int64 // total Register calls served, including duplicates
	Lookups       int64 // total Lookup calls served
}

// Sharding and page-table geometry. The blob->id direction is split
// across storeShards independently locked maps (a register only
// contends with registers hashing to the same shard); the id->blob
// direction is a lock-free append-only page table so lookups never take
// any lock.
const (
	storeShards = 16

	pageBits = 10 // ids per page
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// shard is one slice of the blob->id map.
type shard struct {
	mu     sync.Mutex
	byBlob map[string]uint32
}

// page is one fixed-size block of the id->blob table. Slots are
// published with an atomic store after the id is allocated and before
// the id is revealed to any caller, so a reader holding a legitimately
// obtained id always finds its slot non-nil.
type page [pageSize]atomic.Pointer[string]

// pageTable is the lock-free seq->blob direction: a grow-only slice of
// page pointers readers load atomically and index without locking.
// growMu serializes growth (and reset, which swaps the whole table).
// It is shared by the Store's own partition and by the adopt-only
// replica tables a cluster server keeps for its predecessors.
type pageTable struct {
	pages  atomic.Pointer[[]*page]
	growMu sync.Mutex
	next   atomic.Uint32 // highest seq published (for owners: last allocated)
}

// publish installs seq->key into the table, growing it if needed. Must
// complete before the id escapes to any caller.
func (t *pageTable) publish(seq uint32, key *string) {
	pi := int(seq) >> pageBits
	pages := t.pages.Load()
	if pages == nil || pi >= len(*pages) {
		t.growMu.Lock()
		pages = t.pages.Load()
		if pages == nil || pi >= len(*pages) {
			var grown []*page
			if pages != nil {
				grown = append(grown, *pages...)
			}
			for pi >= len(grown) {
				grown = append(grown, new(page))
			}
			t.pages.Store(&grown)
			pages = &grown
		}
		t.growMu.Unlock()
	}
	(*pages)[pi][int(seq)&pageMask].Store(key)
}

// lookup resolves seq to its interned blob string without locking or
// copying. ok is false for seqs never published.
func (t *pageTable) lookup(seq uint32) (string, bool) {
	pages := t.pages.Load()
	if pages == nil {
		return "", false
	}
	pi := int(seq) >> pageBits
	if pi >= len(*pages) {
		return "", false
	}
	p := (*pages)[pi][int(seq)&pageMask].Load()
	if p == nil {
		return "", false
	}
	return *p, true
}

// raise lifts next to at least seq, so an owner healed from replica
// pushes never re-mints an adopted sequence number.
func (t *pageTable) raise(seq uint32) {
	for {
		n := t.next.Load()
		if seq <= n || t.next.CompareAndSwap(n, seq) {
			return
		}
	}
}

// reset drops the table back to empty.
func (t *pageTable) reset() {
	t.growMu.Lock()
	t.pages.Store(nil)
	t.next.Store(0)
	t.growMu.Unlock()
}

// Store is the Taint Map's state: serialized-taint blob <-> Global ID.
// Ids start at 1; 0 means "untainted" on the wire. Safe for concurrent
// use; lookups are lock-free.
//
// A Store owns exactly one partition of the Global-ID space (partition
// 0 for the standalone NewStore, so pre-cluster deployments are a
// one-partition cluster). Ids it mints are partitionBase|seq. A cluster
// server's Store additionally holds adopt-only replica tables for the
// partitions it replicates: those serve the id->blob direction only —
// the blob->id dedup map is the owning partition's job, because
// registration always routes to the owner — which makes accepting a
// replicated entry several times cheaper than registering one (one
// atomic publish instead of shard lock + map insert + id allocation).
type Store struct {
	base   uint32 // partitionBase(part); 0 for standalone stores
	shards [storeShards]shard
	table  pageTable // the owned partition's id->blob direction

	// reps holds adopt-only replica tables, keyed by partition index.
	// The map itself is copy-on-write behind an atomic pointer so the
	// lookup hot path never takes a lock; repMu serializes writers.
	reps  atomic.Pointer[map[uint32]*pageTable]
	repMu sync.Mutex

	registrations atomic.Int64
	lookups       atomic.Int64
	adopted       atomic.Int64
}

// NewStore returns an empty standalone Store (partition 0).
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].byBlob = make(map[string]uint32)
	}
	return s
}

// NewPartitionStore returns an empty Store minting ids in the given
// partition's slice of the Global-ID space. Partition 0 is identical to
// NewStore.
func NewPartitionStore(part uint32) (*Store, error) {
	if err := checkPartition(part); err != nil {
		return nil, err
	}
	s := NewStore()
	s.base = partitionBase(part)
	return s, nil
}

// Partition returns the partition index this store mints ids in.
func (s *Store) Partition() uint32 { return s.base >> partitionShift }

// hash32 is FNV-1a over the blob — the content hash that picks both the
// dedup shard and (in a cluster) the owning partition on the ring.
func hash32(blob []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range blob {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// shardOf picks the shard for a blob.
func shardOf(blob []byte) uint32 {
	return hash32(blob) & (storeShards - 1)
}

// RegisterBlob returns the Global ID for the given serialized taint,
// allocating a fresh id on first sight. Registration is idempotent: the
// same blob always maps to the same id.
func (s *Store) RegisterBlob(blob []byte) uint32 {
	id, _ := s.registerBlob(blob)
	return id
}

// registerBlob is RegisterBlob reporting whether the id was minted by
// this call — the cluster server replicates only fresh registrations.
func (s *Store) registerBlob(blob []byte) (id uint32, fresh bool) {
	s.registrations.Add(1)
	sh := &s.shards[shardOf(blob)]
	sh.mu.Lock()
	if id, ok := sh.byBlob[string(blob)]; ok { // zero-copy map probe
		sh.mu.Unlock()
		return id, false
	}
	// The one copy of the blob; the shard's key and the page table's
	// slot share it.
	key := string(blob)
	seq := s.table.next.Add(1)
	id = s.base | seq
	s.table.publish(seq, &key)
	sh.byBlob[key] = id
	sh.mu.Unlock()
	return id, true
}

// RegisterBlobs registers every blob, returning the parallel id slice —
// the server half of the batch protocol op. With the sharded store each
// blob only locks its own shard.
func (s *Store) RegisterBlobs(blobs [][]byte) []uint32 {
	ids := make([]uint32, len(blobs))
	for i, blob := range blobs {
		ids[i] = s.RegisterBlob(blob)
	}
	return ids
}

// AdoptBlob installs an id->blob mapping minted elsewhere: the receiving
// half of cluster replication and read-repair. Ids of this store's own
// partition heal its table directly (and raise the allocation cursor so
// a healed owner never re-mints an adopted seq); foreign-partition ids
// land in an adopt-only replica table serving lookups. Adoption is
// idempotent. The provisional bit and a zero sequence are rejected —
// provisional ids must never cross processes.
func (s *Store) AdoptBlob(id uint32, blob []byte) error {
	if id&provisionalBit != 0 {
		return fmt.Errorf("taintmap: adopt of provisional id %d", id)
	}
	seq := SeqOf(id)
	if seq == 0 {
		return fmt.Errorf("taintmap: adopt of id %d with zero sequence", id)
	}
	s.adopted.Add(1)
	if id&^seqMask == s.base {
		// Our own partition: heal the dedup map too, so a restarted
		// owner keeps registration idempotent for healed content.
		sh := &s.shards[shardOf(blob)]
		sh.mu.Lock()
		if _, ok := sh.byBlob[string(blob)]; !ok {
			key := string(blob)
			s.table.publish(seq, &key)
			sh.byBlob[key] = id
			s.table.raise(seq)
		}
		sh.mu.Unlock()
		return nil
	}
	t := s.repTable(PartitionOf(id))
	key := string(blob)
	t.publish(seq, &key)
	t.raise(seq)
	return nil
}

// repTable returns (creating if needed) the adopt-only replica table
// for a foreign partition. The map is copy-on-write: readers load it
// atomically, writers clone under repMu.
func (s *Store) repTable(part uint32) *pageTable {
	if m := s.reps.Load(); m != nil {
		if t, ok := (*m)[part]; ok {
			return t
		}
	}
	s.repMu.Lock()
	defer s.repMu.Unlock()
	old := s.reps.Load()
	if old != nil {
		if t, ok := (*old)[part]; ok {
			return t
		}
	}
	grown := make(map[uint32]*pageTable)
	if old != nil {
		for k, v := range *old {
			grown[k] = v
		}
	}
	t := &pageTable{}
	grown[part] = t
	s.reps.Store(&grown)
	return t
}

// Replicated reports how many entries of a foreign partition this store
// holds (0 when it replicates none) — the read-repair tests' probe.
func (s *Store) Replicated(part uint32) int {
	m := s.reps.Load()
	if m == nil {
		return 0
	}
	t, ok := (*m)[part]
	if !ok {
		return 0
	}
	return int(t.next.Load())
}

// lookupStr resolves id to its interned blob string without locking or
// copying. Own-partition ids hit the owned table; foreign ids fall to
// the replica tables. ok is false for ids never published here.
func (s *Store) lookupStr(id uint32) (string, bool) {
	s.lookups.Add(1)
	if id&^seqMask == s.base {
		return s.table.lookup(SeqOf(id))
	}
	if id&provisionalBit != 0 {
		return "", false
	}
	m := s.reps.Load()
	if m == nil {
		return "", false
	}
	t, ok := (*m)[PartitionOf(id)]
	if !ok {
		return "", false
	}
	return t.lookup(SeqOf(id))
}

// LookupBlob returns the serialized taint registered under id. The
// returned slice is the caller's to keep. Lock-free.
func (s *Store) LookupBlob(id uint32) ([]byte, error) {
	blob, ok := s.lookupStr(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownGlobalID, id)
	}
	return []byte(blob), nil
}

// LookupBlobs resolves every id, failing on the first unknown id — the
// server half of the batch protocol op. Lock-free.
func (s *Store) LookupBlobs(ids []uint32) ([][]byte, error) {
	blobs := make([][]byte, len(ids))
	for i, id := range ids {
		blob, err := s.LookupBlob(id)
		if err != nil {
			return nil, err
		}
		blobs[i] = blob
	}
	return blobs, nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		GlobalTaints:  int(s.table.next.Load()),
		Registrations: s.registrations.Load(),
		Lookups:       s.lookups.Load(),
	}
}

// Adopted returns how many replicated/read-repaired entries this store
// has accepted (including idempotent re-adoptions).
func (s *Store) Adopted() int64 { return s.adopted.Load() }

// Reset drops all state, returning the store to empty. Concurrent
// readers see either the old or the new (empty) table. Lock order
// matches RegisterBlob (shard, then growMu): all shard locks are held
// first, which also quiesces every page-table writer.
func (s *Store) Reset() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	s.table.reset()
	s.repMu.Lock()
	s.reps.Store(nil)
	s.repMu.Unlock()
	for i := range s.shards {
		s.shards[i].byBlob = make(map[string]uint32)
	}
	s.registrations.Store(0)
	s.lookups.Store(0)
	s.adopted.Store(0)
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}
