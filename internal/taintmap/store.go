// Package taintmap implements DisTA's Taint Map (DSN'22 §III-D-2): the
// independent component that assigns a unique Global ID to every taint
// that crosses node boundaries and serves the reverse mapping. With it,
// nodes ship a fixed-length Global ID next to every data byte instead of
// the (variable, >200-byte) serialized taint, solving both the bandwidth
// and the mismatched-length problems the paper identifies.
//
// The package provides the id-allocation Store, a request/response wire
// protocol usable over any stream (netsim conns or real TCP), a Server,
// and two Client implementations: Remote (over a connection) and Local
// (in-process, for tests and single-process simulations).
package taintmap

import (
	"errors"
	"fmt"
	"sync"
)

// ErrUnknownGlobalID is returned by lookups of ids never allocated.
var ErrUnknownGlobalID = errors.New("taintmap: unknown global id")

// Stats describes a Store's usage, for the SDT-vs-SIM analysis (§V-F).
type Stats struct {
	GlobalTaints  int   // distinct taints registered (== highest id)
	Registrations int64 // total Register calls served, including duplicates
	Lookups       int64 // total Lookup calls served
}

// Store is the Taint Map's state: serialized-taint blob <-> Global ID.
// Ids start at 1; 0 means "untainted" on the wire. Safe for concurrent
// use.
type Store struct {
	mu            sync.Mutex
	byBlob        map[string]uint32
	byID          map[uint32][]byte
	next          uint32
	registrations int64
	lookups       int64
}

// NewStore returns an empty Store.
func NewStore() *Store {
	return &Store{
		byBlob: make(map[string]uint32),
		byID:   make(map[uint32][]byte),
		next:   1,
	}
}

// RegisterBlob returns the Global ID for the given serialized taint,
// allocating a fresh id on first sight. Registration is idempotent: the
// same blob always maps to the same id.
func (s *Store) RegisterBlob(blob []byte) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registrations++
	if id, ok := s.byBlob[string(blob)]; ok {
		return id
	}
	id := s.next
	s.next++
	cp := make([]byte, len(blob))
	copy(cp, blob)
	s.byBlob[string(cp)] = id
	s.byID[id] = cp
	return id
}

// LookupBlob returns the serialized taint registered under id.
func (s *Store) LookupBlob(id uint32) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups++
	blob, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownGlobalID, id)
	}
	return blob, nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		GlobalTaints:  int(s.next - 1),
		Registrations: s.registrations,
		Lookups:       s.lookups,
	}
}

// Reset drops all state, returning the store to empty.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byBlob = make(map[string]uint32)
	s.byID = make(map[uint32][]byte)
	s.next = 1
	s.registrations = 0
	s.lookups = 0
}
