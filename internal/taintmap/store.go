// Package taintmap implements DisTA's Taint Map (DSN'22 §III-D-2): the
// independent component that assigns a unique Global ID to every taint
// that crosses node boundaries and serves the reverse mapping. With it,
// nodes ship a fixed-length Global ID next to every data byte instead of
// the (variable, >200-byte) serialized taint, solving both the bandwidth
// and the mismatched-length problems the paper identifies.
//
// The package provides the id-allocation Store, a request/response wire
// protocol usable over any stream (netsim conns or real TCP), a Server,
// and two Client implementations: Remote (over a connection) and Local
// (in-process, for tests and single-process simulations).
package taintmap

import (
	"errors"
	"fmt"
	"sync"
)

// ErrUnknownGlobalID is returned by lookups of ids never allocated.
var ErrUnknownGlobalID = errors.New("taintmap: unknown global id")

// Stats describes a Store's usage, for the SDT-vs-SIM analysis (§V-F).
type Stats struct {
	GlobalTaints  int   // distinct taints registered (== highest id)
	Registrations int64 // total Register calls served, including duplicates
	Lookups       int64 // total Lookup calls served
}

// Store is the Taint Map's state: serialized-taint blob <-> Global ID.
// Ids start at 1; 0 means "untainted" on the wire. Safe for concurrent
// use.
type Store struct {
	mu            sync.Mutex
	byBlob        map[string]uint32
	byID          map[uint32]string // shares its string storage with byBlob keys
	next          uint32
	registrations int64
	lookups       int64
}

// NewStore returns an empty Store.
func NewStore() *Store {
	return &Store{
		byBlob: make(map[string]uint32),
		byID:   make(map[uint32]string),
		next:   1,
	}
}

// RegisterBlob returns the Global ID for the given serialized taint,
// allocating a fresh id on first sight. Registration is idempotent: the
// same blob always maps to the same id.
func (s *Store) RegisterBlob(blob []byte) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registerLocked(blob)
}

// RegisterBlobs registers every blob under one lock acquisition,
// returning the parallel id slice — the server half of the batch
// protocol op.
func (s *Store) RegisterBlobs(blobs [][]byte) []uint32 {
	ids := make([]uint32, len(blobs))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, blob := range blobs {
		ids[i] = s.registerLocked(blob)
	}
	return ids
}

func (s *Store) registerLocked(blob []byte) uint32 {
	s.registrations++
	if id, ok := s.byBlob[string(blob)]; ok { // zero-copy map probe
		return id
	}
	id := s.next
	s.next++
	// The one copy of the blob; byBlob's key and byID's value share it.
	key := string(blob)
	s.byBlob[key] = id
	s.byID[id] = key
	return id
}

// LookupBlob returns the serialized taint registered under id. The
// returned slice is the caller's to keep.
func (s *Store) LookupBlob(id uint32) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lookupLocked(id)
}

// LookupBlobs resolves every id under one lock acquisition, failing on
// the first unknown id — the server half of the batch protocol op.
func (s *Store) LookupBlobs(ids []uint32) ([][]byte, error) {
	blobs := make([][]byte, len(ids))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, id := range ids {
		blob, err := s.lookupLocked(id)
		if err != nil {
			return nil, err
		}
		blobs[i] = blob
	}
	return blobs, nil
}

func (s *Store) lookupLocked(id uint32) ([]byte, error) {
	s.lookups++
	blob, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownGlobalID, id)
	}
	return []byte(blob), nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		GlobalTaints:  int(s.next - 1),
		Registrations: s.registrations,
		Lookups:       s.lookups,
	}
}

// Reset drops all state, returning the store to empty.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byBlob = make(map[string]uint32)
	s.byID = make(map[uint32]string)
	s.next = 1
	s.registrations = 0
	s.lookups = 0
}
