package taintmap

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"dista/internal/core/taint"
	"dista/internal/netsim"
)

func TestStoreRegisterIdempotent(t *testing.T) {
	s := NewStore()
	a := s.RegisterBlob([]byte("taintA"))
	b := s.RegisterBlob([]byte("taintB"))
	if a == b {
		t.Fatal("distinct blobs must get distinct ids")
	}
	if again := s.RegisterBlob([]byte("taintA")); again != a {
		t.Fatalf("re-register returned %d, want %d", again, a)
	}
	st := s.Stats()
	if st.GlobalTaints != 2 || st.Registrations != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreIDsStartAtOne(t *testing.T) {
	s := NewStore()
	if id := s.RegisterBlob([]byte("x")); id != 1 {
		t.Fatalf("first id = %d, want 1 (0 is the untainted marker)", id)
	}
}

func TestStoreLookupUnknown(t *testing.T) {
	s := NewStore()
	if _, err := s.LookupBlob(99); !errors.Is(err, ErrUnknownGlobalID) {
		t.Fatalf("err = %v", err)
	}
}

func TestStoreBlobCopied(t *testing.T) {
	s := NewStore()
	blob := []byte("mutate-me")
	id := s.RegisterBlob(blob)
	blob[0] = 'X'
	got, err := s.LookupBlob(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("mutate-me")) {
		t.Fatal("store must copy blobs at the boundary")
	}
}

func TestStoreReset(t *testing.T) {
	s := NewStore()
	if id := s.RegisterBlob([]byte("x")); id != 1 {
		t.Fatalf("first id = %d, want 1", id)
	}
	s.Reset()
	if st := s.Stats(); st.GlobalTaints != 0 || st.Registrations != 0 {
		t.Fatalf("after reset stats = %+v", st)
	}
	if id := s.RegisterBlob([]byte("y")); id != 1 {
		t.Fatalf("ids must restart at 1, got %d", id)
	}
}

func TestLocalClientRoundTrip(t *testing.T) {
	store := NewStore()
	senderTree := taint.NewTree()
	sender := NewLocalClient(store, senderTree)
	receiverTree := taint.NewTree()
	receiver := NewLocalClient(store, receiverTree)

	t1 := senderTree.NewSource("vote", "n1:1")
	id, err := sender.Register(t1)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("tainted value must get a nonzero id")
	}
	if t1.GlobalID() != id {
		t.Fatal("Register must record the id on the taint (Fig. 9 step ②)")
	}

	got, err := receiver.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if !taint.SameSet(got, t1) {
		t.Fatalf("lookup = %v, want %v", got, t1)
	}
	if got.Tree() != receiverTree {
		t.Fatal("looked-up taint must live in the receiver's tree")
	}
}

func TestLocalClientRegisterCaching(t *testing.T) {
	store := NewStore()
	tree := taint.NewTree()
	c := NewLocalClient(store, tree)
	t1 := tree.NewSource("t1", "n1:1")
	if _, err := c.Register(t1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(t1); err != nil {
		t.Fatal(err)
	}
	// Fig. 9 step ② note: the second send of the same taint must not
	// re-contact the Taint Map.
	if st := store.Stats(); st.Registrations != 1 {
		t.Fatalf("registrations = %d, want 1", st.Registrations)
	}
}

func TestLocalClientLookupCaching(t *testing.T) {
	store := NewStore()
	tree := taint.NewTree()
	src := NewLocalClient(store, taint.NewTree())
	id, err := src.Register(func() taint.Taint {
		tr := taint.NewTree()
		return tr.NewSource("x", "l")
	}())
	if err != nil {
		t.Fatal(err)
	}
	c := NewLocalClient(store, tree)
	if _, err := c.Lookup(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(id); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Lookups != 1 {
		t.Fatalf("lookups = %d, want 1 (client cache)", st.Lookups)
	}
}

func TestClientZeroIDMeansUntainted(t *testing.T) {
	c := NewLocalClient(NewStore(), taint.NewTree())
	id, err := c.Register(taint.Taint{})
	if err != nil || id != 0 {
		t.Fatalf("Register(empty) = %d, %v", id, err)
	}
	got, err := c.Lookup(0)
	if err != nil || !got.Empty() {
		t.Fatalf("Lookup(0) = %v, %v", got, err)
	}
}

func startSim(t *testing.T) (*netsim.Network, *Server) {
	t.Helper()
	n := netsim.New()
	srv, err := StartSimServer(n, "taintmap:7")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return n, srv
}

func TestRemoteClientRoundTrip(t *testing.T) {
	n, srv := startSim(t)

	senderTree := taint.NewTree()
	sender, err := DialSim(n, "taintmap:7", senderTree)
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	receiverTree := taint.NewTree()
	receiver, err := DialSim(n, "taintmap:7", receiverTree)
	if err != nil {
		t.Fatal(err)
	}
	defer receiver.Close()

	t1 := senderTree.NewSource("zxid2", "n1:100")
	t2 := taint.Combine(t1, senderTree.NewSource("epoch", "n1:100"))
	id1, err := sender.Register(t1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := sender.Register(t2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 || id1 == 0 || id2 == 0 {
		t.Fatalf("ids = %d, %d", id1, id2)
	}

	got1, err := receiver.Lookup(id1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := receiver.Lookup(id2)
	if err != nil {
		t.Fatal(err)
	}
	if !taint.SameSet(got1, t1) || !taint.SameSet(got2, t2) {
		t.Fatalf("lookups = %v / %v", got1, got2)
	}
	if got := srv.Store().Stats().GlobalTaints; got != 2 {
		t.Fatalf("global taints = %d, want 2", got)
	}
}

func TestRemoteClientStats(t *testing.T) {
	n, _ := startSim(t)
	tree := taint.NewTree()
	c, err := DialSim(n, "taintmap:7", tree)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Register(tree.NewSource("a", "l")); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.GlobalTaints != 1 || st.Registrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRemoteClientUnknownID(t *testing.T) {
	n, _ := startSim(t)
	c, err := DialSim(n, "taintmap:7", taint.NewTree())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Lookup(12345); err == nil {
		t.Fatal("lookup of unknown id must error")
	}
	// The connection must survive a server-side error.
	if _, err := c.Register(taint.NewTree().NewSource("x", "l")); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
}

func TestRemoteClientConcurrent(t *testing.T) {
	n, srv := startSim(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tree := taint.NewTree()
			c, err := DialSim(n, "taintmap:7", tree)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				tt := tree.NewSource("shared", "common:1")
				if i%2 == 1 {
					tt = taint.Combine(tt, tree.NewSource("extra", "common:1"))
				}
				if _, err := c.Register(tt); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// All goroutines register the same two taint sets: dedupe must hold.
	if got := srv.Store().Stats().GlobalTaints; got != 2 {
		t.Fatalf("global taints = %d, want 2", got)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	n, srv := startSim(t)
	c, err := DialSim(n, "taintmap:7", taint.NewTree())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.Register(taint.NewTree().NewSource("x", "l")); err == nil {
		t.Fatal("register after server close must fail")
	}
}

func TestQuickStoreBijection(t *testing.T) {
	s := NewStore()
	f := func(blobs [][]byte) bool {
		for _, b := range blobs {
			if len(b) > maxFrame {
				continue
			}
			id := s.RegisterBlob(b)
			got, err := s.LookupBlob(id)
			if err != nil || !bytes.Equal(got, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
