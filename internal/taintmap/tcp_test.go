package taintmap

import (
	"io"
	"net"
	"testing"

	"dista/internal/core/taint"
)

// netAcceptor adapts net.Listener the same way cmd/taintmapd does.
type netAcceptor struct {
	l net.Listener
}

func (a netAcceptor) Accept() (io.ReadWriteCloser, error) { return a.l.Accept() }
func (a netAcceptor) Close() error                        { return a.l.Close() }

// TestServerOverRealTCP exercises the standalone-daemon deployment: a
// Taint Map served on a real localhost TCP socket, with remote clients
// registering and resolving taints across distinct trees.
func TestServerOverRealTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP available: %v", err)
	}
	srv := NewServer(NewStore(), netAcceptor{l: l}, nil)
	srv.Start()
	defer srv.Close()
	addr := l.Addr().String()

	dial := func(tree *taint.Tree) *RemoteClient {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		return NewRemoteClient(conn, tree)
	}

	senderTree := taint.NewTree()
	sender := dial(senderTree)
	defer sender.Close()
	receiverTree := taint.NewTree()
	receiver := dial(receiverTree)
	defer receiver.Close()

	secret := taint.Combine(
		senderTree.NewSource("password", "10.0.0.1:4242"),
		senderTree.NewSource("salt", "10.0.0.1:4242"),
	)
	id, err := sender.Register(secret)
	if err != nil {
		t.Fatal(err)
	}
	got, err := receiver.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if !taint.SameSet(got, secret) {
		t.Fatalf("lookup over TCP = %v, want %v", got, secret)
	}
	st, err := receiver.Stats()
	if err != nil || st.GlobalTaints != 1 {
		t.Fatalf("stats = %+v, %v", st, err)
	}
}
