package taintmap

import "dista/internal/core/taint"

// UncachedClient is an ablation baseline: it contacts the Store on
// *every* Register and Lookup, disabling both the per-node Global ID
// memo (Fig. 9 step ② "does not need to request a Global ID again") and
// the receiver-side id -> taint cache. It exists to quantify what the
// paper's caching design saves; production code should use
// LocalClient/RemoteClient.
type UncachedClient struct {
	store *Store
	tree  *taint.Tree
}

var _ Client = (*UncachedClient)(nil)

// NewUncachedClient returns the ablation client.
func NewUncachedClient(store *Store, tree *taint.Tree) *UncachedClient {
	return &UncachedClient{store: store, tree: tree}
}

// Register implements Client without consulting or updating any cache.
func (c *UncachedClient) Register(t taint.Taint) (uint32, error) {
	if t.Empty() {
		return 0, nil
	}
	blob, err := taint.MarshalTaint(t)
	if err != nil {
		return 0, err
	}
	return c.store.RegisterBlob(blob), nil
}

// Lookup implements Client without any cache.
func (c *UncachedClient) Lookup(id uint32) (taint.Taint, error) {
	if id == 0 {
		return taint.Taint{}, nil
	}
	blob, err := c.store.LookupBlob(id)
	if err != nil {
		return taint.Taint{}, err
	}
	return c.tree.UnmarshalTaint(blob)
}

// RegisterBatch implements Client; the ablation still pays one store
// call per taint, since skipping work is exactly what it must not do.
func (c *UncachedClient) RegisterBatch(ts []taint.Taint) ([]uint32, error) {
	ids := make([]uint32, len(ts))
	for i, t := range ts {
		id, err := c.Register(t)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	return ids, nil
}

// LookupBatch implements Client, one store call per id.
func (c *UncachedClient) LookupBatch(ids []uint32) ([]taint.Taint, error) {
	ts := make([]taint.Taint, len(ids))
	for i, id := range ids {
		t, err := c.Lookup(id)
		if err != nil {
			return nil, err
		}
		ts[i] = t
	}
	return ts, nil
}

// Close implements Client.
func (c *UncachedClient) Close() error { return nil }
