// Package wsmini is a minimal WebSocket-style transport over the
// instrumented socket stack: an HTTP Upgrade handshake followed by
// length-prefixed binary frames. It exists because the paper's §V-B
// lists WebSocket among the protocols ActiveMQ speaks; the mini-ActiveMQ
// exposes a STOMP-over-WebSocket listener built on this package.
//
// Frame layout (all metadata untainted; payload bytes keep labels):
//
//	byte   opcode (1 = binary, 8 = close)
//	uint32 payload length
//	bytes  payload
package wsmini

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"dista/internal/core/taint"
	"dista/internal/jre"
)

// Opcodes.
const (
	OpBinary = byte(1)
	OpClose  = byte(8)
)

// ErrClosed reports a close frame from the peer.
var ErrClosed = errors.New("wsmini: connection closed by peer")

// maxFrame bounds payloads against corrupt length prefixes.
const maxFrame = 64 << 20

// Conn is an upgraded WebSocket-style connection.
type Conn struct {
	sock *jre.Socket
}

// WriteMessage sends one binary frame.
func (c *Conn) WriteMessage(payload taint.Bytes) error {
	return c.writeFrame(OpBinary, payload)
}

func (c *Conn) writeFrame(op byte, payload taint.Bytes) error {
	hdr := make([]byte, 0, 5)
	hdr = append(hdr, op)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(payload.Len()))
	return c.sock.OutputStream().Write(taint.WrapBytes(hdr).Append(payload))
}

// ReadMessage blocks for the next binary frame. A close frame returns
// ErrClosed.
func (c *Conn) ReadMessage() (taint.Bytes, error) {
	hdr := taint.MakeBytes(5)
	if err := jre.ReadFull(c.sock.InputStream(), &hdr); err != nil {
		return taint.Bytes{}, err
	}
	op := hdr.Data[0]
	n := int(binary.BigEndian.Uint32(hdr.Data[1:5]))
	if n > maxFrame {
		return taint.Bytes{}, fmt.Errorf("wsmini: frame of %d bytes", n)
	}
	payload := taint.MakeBytes(n)
	if err := jre.ReadFull(c.sock.InputStream(), &payload); err != nil {
		return taint.Bytes{}, err
	}
	switch op {
	case OpBinary:
		return payload, nil
	case OpClose:
		return taint.Bytes{}, ErrClosed
	default:
		return taint.Bytes{}, fmt.Errorf("wsmini: unknown opcode %d", op)
	}
}

// Close sends a close frame and tears the socket down.
func (c *Conn) Close() error {
	_ = c.writeFrame(OpClose, taint.Bytes{})
	return c.sock.Close()
}

// handshake lines; a toy of RFC 6455's Upgrade exchange.
const (
	clientHello = "GET %s HTTP/1.1\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n\r\n"
	serverHello = "HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\n\r\n"
)

// Dial connects and performs the Upgrade handshake for a path.
func Dial(env *jre.Env, addr, path string) (*Conn, error) {
	sock, err := jre.DialSocket(env, addr)
	if err != nil {
		return nil, err
	}
	req := fmt.Sprintf(clientHello, path)
	if err := sock.OutputStream().Write(taint.WrapBytes([]byte(req))); err != nil {
		sock.Close()
		return nil, err
	}
	resp := taint.MakeBytes(len(serverHello))
	if err := jre.ReadFull(sock.InputStream(), &resp); err != nil {
		sock.Close()
		return nil, err
	}
	if string(resp.Data) != serverHello {
		sock.Close()
		return nil, fmt.Errorf("wsmini: handshake rejected: %q", resp.Data)
	}
	return &Conn{sock: sock}, nil
}

// Server accepts upgraded connections and hands them to a handler.
type Server struct {
	ss      *jre.ServerSocket
	handler func(path string, conn *Conn)
	done    chan struct{}
}

// Serve binds a WebSocket endpoint; handler runs per connection (and
// owns closing it).
func Serve(env *jre.Env, addr string, handler func(path string, conn *Conn)) (*Server, error) {
	ss, err := jre.ListenSocket(env, addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ss: ss, handler: handler, done: make(chan struct{})}
	go s.acceptLoop()
	return s, nil
}

func (s *Server) acceptLoop() {
	defer close(s.done)
	for {
		sock, err := s.ss.Accept()
		if err != nil {
			return
		}
		go s.upgrade(sock)
	}
}

// upgrade reads the client hello, answers 101, and invokes the handler.
func (s *Server) upgrade(sock *jre.Socket) {
	// Read until the header terminator, accumulating as taint.Bytes so
	// any labels on the handshake bytes survive with the data.
	var acc taint.Bytes
	chunk := taint.MakeBytes(512)
	for !strings.Contains(string(acc.Data), "\r\n\r\n") {
		n, err := sock.InputStream().Read(&chunk)
		if n > 0 {
			acc = acc.Append(chunk.Slice(0, n))
		}
		if err != nil {
			sock.Close()
			return
		}
		if acc.Len() > 8192 {
			sock.Close()
			return
		}
	}
	head := string(acc.Data)
	if !strings.Contains(head, "Upgrade: websocket") {
		sock.Close()
		return
	}
	parts := strings.SplitN(strings.SplitN(head, "\r\n", 2)[0], " ", 3)
	path := "/"
	if len(parts) == 3 {
		path = parts[1]
	}
	if err := sock.OutputStream().Write(taint.WrapBytes([]byte(serverHello))); err != nil {
		sock.Close()
		return
	}
	s.handler(path, &Conn{sock: sock})
}

// Close stops accepting.
func (s *Server) Close() error {
	err := s.ss.Close()
	<-s.done
	return err
}
