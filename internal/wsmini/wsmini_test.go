package wsmini

import (
	"errors"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/core/tracker"
	"dista/internal/jre"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

func envs(t *testing.T, mode tracker.Mode, n int) []*jre.Env {
	t.Helper()
	net := netsim.New()
	store := taintmap.NewStore()
	out := make([]*jre.Env, n)
	for i := range out {
		name := "node" + string(rune('1'+i))
		a := tracker.New(name, mode)
		a = tracker.New(name, mode, tracker.WithTaintMap(taintmap.NewLocalClient(store, a.Tree())))
		out[i] = jre.NewEnv(net, a)
	}
	return out
}

func TestHandshakeAndEchoWithTaint(t *testing.T) {
	e := envs(t, tracker.ModeDista, 2)
	srv, err := Serve(e[1], "ws:80", func(path string, conn *Conn) {
		defer conn.Close()
		if path != "/chat" {
			return
		}
		for {
			msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(msg); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := Dial(e[0], "ws:80", "/chat")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	secret := taint.FromString("ws-payload", e[0].Agent.Source("s", "ws"))
	if err := conn.WriteMessage(secret); err != nil {
		t.Fatal(err)
	}
	echo, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(echo.Data) != "ws-payload" {
		t.Fatalf("echo = %q", echo.Data)
	}
	if !echo.Union().Has("ws") {
		t.Fatal("taint lost across the WebSocket round trip")
	}
}

func TestCloseFrame(t *testing.T) {
	e := envs(t, tracker.ModeOff, 2)
	gotClose := make(chan error, 1)
	srv, err := Serve(e[1], "ws:80", func(_ string, conn *Conn) {
		_, err := conn.ReadMessage()
		gotClose <- err
		conn.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := Dial(e[0], "ws:80", "/")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := <-gotClose; !errors.Is(err, ErrClosed) {
		t.Fatalf("server saw %v, want ErrClosed", err)
	}
}

func TestNonWebSocketRequestRejected(t *testing.T) {
	e := envs(t, tracker.ModeOff, 2)
	srv, err := Serve(e[1], "ws:80", func(_ string, conn *Conn) { conn.Close() })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sock, err := jre.DialSocket(e[0], "ws:80")
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	if err := sock.OutputStream().Write(taint.WrapBytes([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))); err != nil {
		t.Fatal(err)
	}
	buf := taint.MakeBytes(1)
	if _, err := sock.InputStream().Read(&buf); err == nil {
		t.Fatal("plain HTTP request must be dropped, not upgraded")
	}
}

func TestMultipleMessagesPreserveOrder(t *testing.T) {
	e := envs(t, tracker.ModeDista, 2)
	srv, err := Serve(e[1], "ws:80", func(_ string, conn *Conn) {
		defer conn.Close()
		for {
			msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(msg); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(e[0], "ws:80", "/")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	for i := 0; i < 10; i++ {
		want := string(rune('a' + i))
		if err := conn.WriteMessage(taint.WrapBytes([]byte(want))); err != nil {
			t.Fatal(err)
		}
		got, err := conn.ReadMessage()
		if err != nil || string(got.Data) != want {
			t.Fatalf("msg %d = %q, %v", i, got.Data, err)
		}
	}
}

func TestUnknownOpcode(t *testing.T) {
	e := envs(t, tracker.ModeOff, 2)
	srv, err := Serve(e[1], "ws:80", func(_ string, conn *Conn) {
		// Write a frame with a bogus opcode directly.
		conn.writeFrame(5, taint.WrapBytes([]byte("x")))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(e[0], "ws:80", "/")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.ReadMessage(); err == nil {
		t.Fatal("unknown opcode must error")
	}
}

func TestDialToNonWSServerFails(t *testing.T) {
	e := envs(t, tracker.ModeOff, 2)
	// A plain socket server answering garbage.
	ss, err := jre.ListenSocket(e[1], "plain:80")
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	go func() {
		sock, err := ss.Accept()
		if err != nil {
			return
		}
		defer sock.Close()
		buf := taint.MakeBytes(64)
		sock.InputStream().Read(&buf)
		sock.OutputStream().Write(taint.WrapBytes([]byte("HTTP/1.1 400 Bad Request\r\n\r\n")))
	}()
	if _, err := Dial(e[0], "plain:80", "/x"); err == nil {
		t.Fatal("dial to a non-ws server must fail the handshake")
	}
}
