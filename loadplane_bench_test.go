package dista

import (
	"testing"

	"dista/internal/load"
)

// BenchmarkLoadPlane measures the PR 10 scheduler-fabric criteria with
// the closed-loop generator (DESIGN.md §12). Each iteration is one
// whole load run, so these are macro-benchmarks: run them with
// -benchtime=1x and use -count for repetitions. Every run reports its
// latency quantiles (p50/p99/p999-ns/op), tainted-byte throughput and
// goroutine bill as custom metrics; default ns/op is whole-run wall
// time and is not used by any criterion.
//
//	Soak1k           — 1,000-connection baseline, default mix over all
//	                   three transports.
//	Soak50k          — the same per-connection shape at 50,000
//	                   connections. The acceptance criterion bounds its
//	                   p999 by a fixed multiple of Soak1k's p999: on the
//	                   closed loop both runs carry the same per-op work,
//	                   so the multiple prices pure fabric scaling (run
//	                   queues, accept rings, credit backpressure), not a
//	                   bigger payload.
//	SinkPolled5k     — 5,000 stream connections against the default
//	                   poller-based echo sink: the sink's goroutine bill
//	                   is a handful of workers regardless of fan-in.
//	SinkGoroutine5k  — the identical workload against the pre-fabric
//	                   goroutine-per-connection sink shape. The
//	                   sink-goroutines ratio between these two is the
//	                   >=5x connections-per-goroutine headroom claim.
// Both soaks carry the same per-op work (512 B, default mixes); the
// baseline runs more ops per session so its quantiles come from
// steady-state closed-loop samples rather than the setup burst alone.
const (
	soakPayload  = 512
	soak1kOps    = 16
	soak50kOps   = 2
	sinkSoakOps  = 2
	sinkSoakConn = 5000
)

func benchLoadPlane(b *testing.B, cfg load.Config) {
	b.Helper()
	var r load.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = load.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.P50.Nanoseconds()), "p50-ns/op")
	b.ReportMetric(float64(r.P99.Nanoseconds()), "p99-ns/op")
	b.ReportMetric(float64(r.P999.Nanoseconds()), "p999-ns/op")
	b.ReportMetric(r.TaintsPerSec(), "taints/sec")
	b.ReportMetric(float64(r.PeakGoroutines), "goroutines")
	b.ReportMetric(float64(r.SinkGoroutines), "sink-goroutines")
}

func BenchmarkLoadPlane(b *testing.B) {
	b.Run("Soak1k", func(b *testing.B) {
		benchLoadPlane(b, load.Config{Conns: 1000, Ops: soak1kOps, Payload: soakPayload})
	})
	b.Run("Soak50k", func(b *testing.B) {
		benchLoadPlane(b, load.Config{Conns: 50000, Ops: soak50kOps, Payload: soakPayload})
	})
	b.Run("SinkPolled5k", func(b *testing.B) {
		benchLoadPlane(b, load.Config{Conns: sinkSoakConn, Ops: sinkSoakOps, Payload: soakPayload,
			Paths: load.PathMix{Stream: 100}})
	})
	b.Run("SinkGoroutine5k", func(b *testing.B) {
		benchLoadPlane(b, load.Config{Conns: sinkSoakConn, Ops: sinkSoakOps, Payload: soakPayload,
			Paths: load.PathMix{Stream: 100}, SinkGoroutinePerConn: true})
	})
}
