package dista

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"dista/internal/core/taint"
	"dista/internal/taintmap"
)

// BenchmarkTaintMapConcurrent measures the Taint Map *service* (store +
// wire protocol + client) under concurrent load: 8 goroutines sharing
// one client connection to one server over real loopback TCP, issuing a
// mixed 90/10 hit/miss register+lookup stream. This is the §III-D-2
// single-point-bottleneck scenario: the hits model taints already known
// to the node (free, per-node caches), the misses pay a Taint Map round
// trip.
//
// A miss must stay a miss no matter how many iterations the harness
// runs, or the fast client would exhaust any finite pool of unseen
// taints and quietly degrade into measuring cache hits. So each miss
// re-registers a taint from a fixed per-goroutine pool with its cached
// Global ID cleared: the client has no shortcut and pays the full wire
// round trip, while the server-side store dedups, keeping the heap and
// the miss rate constant at every b.N.
//
// Sub-benchmarks:
//
//	Mux8           — 8 goroutines, one multiplexed tagged-protocol client
//	Resilient8     — 8 goroutines, the multiplexed client wrapped in the
//	                 resilience layer (default options) on a fault-free
//	                 network — measures the wrapper's overhead, which must
//	                 stay within 1.10x of Mux8
//	StopAndWait8   — 8 goroutines, one serialized request/response client
//	                 (byte-identical to the pre-sharding RemoteClient —
//	                 the in-run baseline the tentpole is measured against)
//	UntaggedSingle — 1 goroutine, pure round-trip latency of the untagged
//	                 ops (must stay unchanged within noise)
const (
	benchClients = 8
	benchHotN    = 64
	benchMissN   = 1 << 12 // distinct miss-path taints per goroutine
)

type tmBenchEnv struct {
	addr string
	srv  *taintmap.Server
}

type tcpAcceptor struct{ l net.Listener }

func (a tcpAcceptor) Accept() (io.ReadWriteCloser, error) { return a.l.Accept() }
func (a tcpAcceptor) Close() error                        { return a.l.Close() }

// newTMBenchEnv starts a Taint Map server on loopback TCP.
func newTMBenchEnv(b *testing.B) *tmBenchEnv {
	b.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Skipf("no loopback TCP available: %v", err)
	}
	srv := taintmap.NewServer(taintmap.NewStore(), tcpAcceptor{l: l}, nil)
	srv.Start()
	env := &tmBenchEnv{addr: l.Addr().String(), srv: srv}
	b.Cleanup(func() { srv.Close() })
	return env
}

func (e *tmBenchEnv) dial(b *testing.B) io.ReadWriteCloser {
	b.Helper()
	conn, err := net.Dial("tcp", e.addr)
	if err != nil {
		b.Fatal(err)
	}
	return conn
}

// runMixed drives the 90/10 workload through one shared client: per 10
// ops, 9 hits (a GlobalID-cached register alternating with a
// memo-cached lookup) and 1 miss (a register whose Global ID cache is
// cleared, forcing the full wire round trip). All taints are minted
// before the clock starts so the timed loop measures the Taint Map
// service, not the taint constructor.
func runMixed(b *testing.B, env *tmBenchEnv, client taintmap.Client, tree *taint.Tree, goroutines int) {
	b.Helper()
	hot := make([]taint.Taint, benchHotN)
	hotIDs := make([]uint32, benchHotN)
	for i := range hot {
		hot[i] = tree.NewSource(fmt.Sprintf("hot-%d", i), "bench:1")
		id, err := client.Register(hot[i])
		if err != nil {
			b.Fatal(err)
		}
		hotIDs[i] = id
	}
	// Per-goroutine miss pools: names are distinct across goroutines so
	// the mux client's singleflight table cannot collapse two misses
	// into one request.
	miss := make([][]taint.Taint, goroutines)
	for g := range miss {
		miss[g] = make([]taint.Taint, benchMissN)
		for i := range miss[g] {
			miss[g][i] = tree.NewSource(fmt.Sprintf("miss-%d-%d", g, i), "bench:1")
		}
	}
	perG := b.N / goroutines
	if perG == 0 {
		perG = 1
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nextMiss := 0
			for i := 0; i < perG; i++ {
				k := i*goroutines + g
				var err error
				if i%10 == 7 { // miss: uncached register round trip
					t := miss[g][nextMiss%benchMissN]
					nextMiss++
					t.SetGlobalID(0)
					_, err = client.Register(t)
				} else if k%2 == 0 { // hit: register of an already-known taint
					_, err = client.Register(hot[k%benchHotN])
				} else { // hit: lookup of a memo-resident id
					_, err = client.Lookup(hotIDs[k%benchHotN])
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
}

func BenchmarkTaintMapConcurrent(b *testing.B) {
	b.Run("Mux8", func(b *testing.B) {
		env := newTMBenchEnv(b)
		tree := taint.NewTree()
		client := taintmap.NewRemoteClient(env.dial(b), tree)
		defer client.Close()
		runMixed(b, env, client, tree, benchClients)
	})
	b.Run("Resilient8", func(b *testing.B) {
		env := newTMBenchEnv(b)
		tree := taint.NewTree()
		client := taintmap.NewResilientClient(
			func() (io.ReadWriteCloser, error) { return net.Dial("tcp", env.addr) },
			tree, taintmap.ResilientOptions{})
		defer client.Close()
		runMixed(b, env, client, tree, benchClients)
	})
	b.Run("StopAndWait8", func(b *testing.B) {
		env := newTMBenchEnv(b)
		tree := taint.NewTree()
		client := taintmap.NewStopAndWaitClient(env.dial(b), tree)
		defer client.Close()
		runMixed(b, env, client, tree, benchClients)
	})
	b.Run("UntaggedSingle", func(b *testing.B) {
		env := newTMBenchEnv(b)
		tree := taint.NewTree()
		client := taintmap.NewStopAndWaitClient(env.dial(b), tree)
		defer client.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Register(tree.NewSource(fmt.Sprintf("lat-%d", i), "bench:1")); err != nil {
				b.Fatal(err)
			}
		}
	})
}
