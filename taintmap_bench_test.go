package dista

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dista/internal/core/taint"
	"dista/internal/netsim"
	"dista/internal/taintmap"
)

// BenchmarkTaintMapConcurrent measures the Taint Map *service* (store +
// wire protocol + client) under concurrent load: 8 goroutines sharing
// one client connection to one server over real loopback TCP, issuing a
// mixed 90/10 hit/miss register+lookup stream. This is the §III-D-2
// single-point-bottleneck scenario: the hits model taints already known
// to the node (free, per-node caches), the misses pay a Taint Map round
// trip.
//
// A miss must stay a miss no matter how many iterations the harness
// runs, or the fast client would exhaust any finite pool of unseen
// taints and quietly degrade into measuring cache hits. So each miss
// re-registers a taint from a fixed per-goroutine pool with its cached
// Global ID cleared: the client has no shortcut and pays the full wire
// round trip, while the server-side store dedups, keeping the heap and
// the miss rate constant at every b.N.
//
// Sub-benchmarks:
//
//	Mux8           — 8 goroutines, one multiplexed tagged-protocol client
//	Resilient8     — 8 goroutines, the multiplexed client wrapped in the
//	                 resilience layer (default options) on a fault-free
//	                 network — measures the wrapper's overhead, which must
//	                 stay within 1.10x of Mux8
//	StopAndWait8   — 8 goroutines, one serialized request/response client
//	                 (byte-identical to the pre-sharding RemoteClient —
//	                 the in-run baseline the tentpole is measured against)
//	UntaggedSingle — 1 goroutine, pure round-trip latency of the untagged
//	                 ops (must stay unchanged within noise)
const (
	benchClients = 8
	benchHotN    = 64
	benchMissN   = 1 << 12 // distinct miss-path taints per goroutine
)

type tmBenchEnv struct {
	addr string
	srv  *taintmap.Server
}

type tcpAcceptor struct{ l net.Listener }

func (a tcpAcceptor) Accept() (io.ReadWriteCloser, error) { return a.l.Accept() }
func (a tcpAcceptor) Close() error                        { return a.l.Close() }

// newTMBenchEnv starts a Taint Map server on loopback TCP.
func newTMBenchEnv(b *testing.B) *tmBenchEnv {
	b.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Skipf("no loopback TCP available: %v", err)
	}
	srv := taintmap.NewServer(taintmap.NewStore(), tcpAcceptor{l: l}, nil)
	srv.Start()
	env := &tmBenchEnv{addr: l.Addr().String(), srv: srv}
	b.Cleanup(func() { srv.Close() })
	return env
}

func (e *tmBenchEnv) dial(b *testing.B) io.ReadWriteCloser {
	b.Helper()
	conn, err := net.Dial("tcp", e.addr)
	if err != nil {
		b.Fatal(err)
	}
	return conn
}

// runMixed drives the 90/10 workload through one shared client: per 10
// ops, 9 hits (a GlobalID-cached register alternating with a
// memo-cached lookup) and 1 miss (a register whose Global ID cache is
// cleared, forcing the full wire round trip). All taints are minted
// before the clock starts so the timed loop measures the Taint Map
// service, not the taint constructor.
func runMixed(b *testing.B, env *tmBenchEnv, client taintmap.Client, tree *taint.Tree, goroutines int) {
	b.Helper()
	hot := make([]taint.Taint, benchHotN)
	hotIDs := make([]uint32, benchHotN)
	for i := range hot {
		hot[i] = tree.NewSource(fmt.Sprintf("hot-%d", i), "bench:1")
		id, err := client.Register(hot[i])
		if err != nil {
			b.Fatal(err)
		}
		hotIDs[i] = id
	}
	// Per-goroutine miss pools: names are distinct across goroutines so
	// the mux client's singleflight table cannot collapse two misses
	// into one request.
	miss := make([][]taint.Taint, goroutines)
	for g := range miss {
		miss[g] = make([]taint.Taint, benchMissN)
		for i := range miss[g] {
			miss[g][i] = tree.NewSource(fmt.Sprintf("miss-%d-%d", g, i), "bench:1")
		}
	}
	perG := b.N / goroutines
	if perG == 0 {
		perG = 1
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nextMiss := 0
			for i := 0; i < perG; i++ {
				k := i*goroutines + g
				var err error
				if i%10 == 7 { // miss: uncached register round trip
					t := miss[g][nextMiss%benchMissN]
					nextMiss++
					t.SetGlobalID(0)
					_, err = client.Register(t)
				} else if k%2 == 0 { // hit: register of an already-known taint
					_, err = client.Register(hot[k%benchHotN])
				} else { // hit: lookup of a memo-resident id
					_, err = client.Lookup(hotIDs[k%benchHotN])
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
}

func BenchmarkTaintMapConcurrent(b *testing.B) {
	b.Run("Mux8", func(b *testing.B) {
		env := newTMBenchEnv(b)
		tree := taint.NewTree()
		client := taintmap.NewRemoteClient(env.dial(b), tree)
		defer client.Close()
		runMixed(b, env, client, tree, benchClients)
	})
	b.Run("Resilient8", func(b *testing.B) {
		env := newTMBenchEnv(b)
		tree := taint.NewTree()
		client := taintmap.NewResilientClient(
			func() (io.ReadWriteCloser, error) { return net.Dial("tcp", env.addr) },
			tree, taintmap.ResilientOptions{})
		defer client.Close()
		runMixed(b, env, client, tree, benchClients)
	})
	b.Run("StopAndWait8", func(b *testing.B) {
		env := newTMBenchEnv(b)
		tree := taint.NewTree()
		client := taintmap.NewStopAndWaitClient(env.dial(b), tree)
		defer client.Close()
		runMixed(b, env, client, tree, benchClients)
	})
	b.Run("UntaggedSingle", func(b *testing.B) {
		env := newTMBenchEnv(b)
		tree := taint.NewTree()
		client := taintmap.NewStopAndWaitClient(env.dial(b), tree)
		defer client.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Register(tree.NewSource(fmt.Sprintf("lat-%d", i), "bench:1")); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Cluster8 is the tentpole's latency criterion: the ClusterClient
	// pointed at ONE standalone server over the same loopback TCP and
	// workload as Mux8. The cluster layer (content hash, ring routing,
	// per-member resilience) must cost <= 1.05x the bare mux client, so
	// adopting the cluster client is free for single-server deployments.
	b.Run("Cluster8", func(b *testing.B) {
		env := newTMBenchEnv(b)
		tree := taint.NewTree()
		ring, err := taintmap.NewRing(1, 1, []taintmap.Member{{Part: 0, Addr: env.addr}})
		if err != nil {
			b.Fatal(err)
		}
		client, err := taintmap.NewClusterClient(ring, func(addr string) (io.ReadWriteCloser, error) {
			return net.Dial("tcp", addr)
		}, tree, taintmap.ClusterOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		runMixed(b, env, client, tree, benchClients)
	})
}

// The scaling series: the same 8-goroutine mixed workload against 1, 2
// and 4 cluster members. This host has a single CPU, so real parallel
// speedup cannot be measured directly; instead each simulated server
// carries a service-cost model (WithServiceModel) — a per-server mutex
// under which modeled per-request processing time is slept — so N
// members behave like N fixed-capacity single-threaded machines whose
// service times overlap in wall-clock. Registration is the expensive
// op; accepting a replicated entry is modeled at an order less (the
// adopt-only replica path is one atomic publish — no dedup map, no id
// allocation), which is what keeps RF-2 replication from eating the
// scaling headroom.
const (
	benchRegisterCost = 400 * time.Microsecond
	benchAdoptCost    = 10 * time.Microsecond
	benchLookupCost   = 80 * time.Microsecond
)

// svcModel bills modeled service time against one server. Debt is
// slept in >= 1ms slices (holding the server's one-request-at-a-time
// mutex) so timer granularity amortizes over many requests instead of
// inflating every individual charge.
//
// Replication/repair adoptions ('P'/'W') are billed asynchronously: the
// adopt runs on the replica's peer connection while the OWNER awaits
// the ack, so sleeping it inline would stall the owner's pipeline on
// the replica's modeled busy-time and couple every member's capacity to
// its successor's — serializing the very servers the model is supposed
// to overlap. The debt is still paid in full, folded into the replica's
// own next flush.
type svcModel struct {
	mu       sync.Mutex
	debt     time.Duration
	peerDebt atomic.Int64 // ns billed by 'P'/'W' handlers, slept at the next flush
}

func (m *svcModel) cost(op byte, items int) {
	var d time.Duration
	switch op {
	case 'R':
		d = benchRegisterCost
	case 'B':
		d = benchRegisterCost * time.Duration(items)
	case 'P', 'W':
		m.peerDebt.Add(int64(items) * int64(benchAdoptCost))
		return
	case 'L':
		d = benchLookupCost
	case 'M':
		d = benchLookupCost * time.Duration(items)
	default:
		return
	}
	m.mu.Lock()
	m.debt += d + time.Duration(m.peerDebt.Swap(0))
	if m.debt >= 100*time.Microsecond {
		want := m.debt
		start := time.Now()
		time.Sleep(want)
		// The kernel overshoots small sleeps by hundreds of
		// microseconds on this class of host; carry the overshoot as
		// credit so modeled capacity stays exact instead of shrinking
		// by the timer error.
		m.debt = want - time.Since(start)
	}
	m.mu.Unlock()
}

func benchClusterScale(b *testing.B, n int) {
	network := netsim.New()
	members := make([]taintmap.Member, n)
	for i := range members {
		members[i] = taintmap.Member{Part: uint32(i), Addr: fmt.Sprintf("tm%d:1", i)}
	}
	ring, err := taintmap.NewRing(1, taintmap.DefaultReplication, members)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		store, err := taintmap.NewPartitionStore(uint32(i))
		if err != nil {
			b.Fatal(err)
		}
		model := &svcModel{} // one model per member: capacities are independent
		srv, node, err := taintmap.StartSimClusterMember(network, ring, uint32(i), store,
			taintmap.WithServiceModel(model.cost))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close(); node.Close() })
	}
	tree := taint.NewTree()
	client, err := taintmap.DialSimCluster(network, "bench:1", ring, tree, taintmap.ClusterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	runMixed(b, nil, client, tree, benchClients)
}

func BenchmarkTaintMapCluster(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("Scale%d", n), func(b *testing.B) { benchClusterScale(b, n) })
	}
}
